"""The user-facing on-demand service handle.

§9: "Two components are required to support in-network computing on demand.
The first is a controller … The second is an application-specific task,
which may be null, in charge of the actual transition of an application."

:class:`OnDemandService` binds the two: it owns the current
:class:`Placement`, the classifier offload switch, and the
application-specific transition hooks (e.g. ``LakeKvs.enable`` /
``LakeKvs.disable``, or a Paxos leader shift).  Controllers call
``shift_to_hardware()`` / ``shift_to_software()``; the service records
every transition for the Figure 6/7 timelines.

Devices with a non-zero ``warmup_us`` (SmartNIC tiers: FPGA
reconfiguration, ASIC table loads, SoC boot) don't serve the instant the
controller decides: the card powers up immediately (and draws power), but
the classifier keeps steering traffic to the host until the warm-up
elapses — software keeps serving during warm-up, exactly the §9
transition discipline.  The NetFPGA profile's warm-up is 0 (LaKe's cache
warm-up is emergent), so the paper-figure timelines are unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ConfigurationError, PlacementError
from ..net.classifier import PacketClassifier
from ..net.packet import TrafficClass
from ..sim import Simulator


class Placement(enum.Enum):
    SOFTWARE = "software"
    HARDWARE = "hardware"
    #: the card is powering up: it draws power but the classifier still
    #: steers traffic to the host.  Transient — resolves to HARDWARE when
    #: the warm-up timer fires, or back to SOFTWARE if the controller
    #: cancels the shift first.
    WARMING = "warming"


@dataclass(frozen=True)
class Shift:
    """One recorded transition."""

    time_us: float
    to: Placement
    reason: str


class OnDemandService:
    """A service whose placement can shift between host and network."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        classifier: Optional[PacketClassifier] = None,
        traffic_class: Optional[TrafficClass] = None,
        to_hardware: Optional[Callable[[], None]] = None,
        to_software: Optional[Callable[[], None]] = None,
        initial: Placement = Placement.SOFTWARE,
        warmup_us: float = 0.0,
    ):
        if warmup_us < 0:
            raise ConfigurationError(f"warmup_us must be >= 0, got {warmup_us}")
        self.sim = sim
        self.name = name
        self.classifier = classifier
        self.traffic_class = traffic_class
        self._to_hardware = to_hardware
        self._to_software = to_software
        self.placement = initial
        self.warmup_us = warmup_us
        self._warmup_event = None
        self.shifts: List[Shift] = []

    # -- transitions ------------------------------------------------------

    def shift_to_hardware(self, reason: str = "", immediate: bool = False) -> bool:
        """Shift processing into the network; False if already there.

        With a non-zero ``warmup_us`` the card is brought up now (the
        application hook runs, power draw starts) but traffic keeps going
        to the host until the warm-up elapses; the shift is recorded at
        *activation* time, when the classifier actually flips.  Pass
        ``immediate=True`` to skip the warm-up — used for declared initial
        placements (``start_in_hardware``), which describe a card that was
        warm before the experiment window opened.
        """
        if self.placement is not Placement.SOFTWARE:
            # HARDWARE: nothing to do.  WARMING: the card is already on
            # its way up; the pending activation stands.
            return False
        if self._to_hardware is not None:
            self._to_hardware()
        if self.warmup_us > 0.0 and not immediate:
            self.placement = Placement.WARMING
            self._warmup_event = self.sim.schedule(
                self.warmup_us,
                lambda: self._activate_hardware(reason),
                name=f"{self.name}.warmup",
            )
            return True
        self._flip_offload(True)
        self.placement = Placement.HARDWARE
        self.shifts.append(Shift(self.sim.now, Placement.HARDWARE, reason))
        return True

    def _activate_hardware(self, reason: str) -> None:
        self._warmup_event = None
        self._flip_offload(True)
        self.placement = Placement.HARDWARE
        self.shifts.append(Shift(self.sim.now, Placement.HARDWARE, reason))

    def shift_to_software(self, reason: str = "") -> bool:
        """Shift processing back to the host; False if already there.

        Called during warm-up it cancels the pending activation (the
        classifier never flipped, so the host never stopped serving) and
        powers the card back down.
        """
        if self.placement is Placement.SOFTWARE:
            return False
        if self.placement is Placement.WARMING and self._warmup_event is not None:
            self._warmup_event.cancel()
            self._warmup_event = None
        self._flip_offload(False)
        if self._to_software is not None:
            self._to_software()
        self.placement = Placement.SOFTWARE
        self.shifts.append(Shift(self.sim.now, Placement.SOFTWARE, reason))
        return True

    def _flip_offload(self, enabled: bool) -> None:
        if self.classifier is not None:
            if self.traffic_class is None:
                raise PlacementError(f"{self.name}: classifier without traffic class")
            self.classifier.set_offload(self.traffic_class, enabled)

    # -- introspection ------------------------------------------------------

    @property
    def in_hardware(self) -> bool:
        return self.placement is Placement.HARDWARE

    @property
    def warming(self) -> bool:
        return self.placement is Placement.WARMING

    def shift_times_us(self) -> List[float]:
        """The red dashed lines of Figures 6 and 7."""
        return [s.time_us for s in self.shifts]
