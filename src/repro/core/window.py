"""Sliding-window estimators.

§9.1: both controllers average their inputs over a configurable window
("the second [parameter] is the averaging period (implemented as a sliding
window)" … "the information is inspected over time, avoiding harsh
decisions based on spikes and outliers").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..errors import ConfigurationError
from ..units import SEC


class SlidingWindowRate:
    """Event rate (events/second) over a sliding time window.

    ``observe(now_us, count)`` records events; ``rate_pps(now_us)`` returns
    the average rate over the trailing window.  Events older than the window
    are evicted lazily.
    """

    def __init__(self, window_us: float):
        if window_us <= 0:
            raise ConfigurationError("window must be positive")
        self.window_us = window_us
        self._events: Deque[Tuple[float, int]] = deque()
        self._count_in_window = 0

    def observe(self, now_us: float, count: int = 1) -> None:
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        if self._events and now_us < self._events[-1][0]:
            raise ConfigurationError("observations must be time-ordered")
        self._events.append((now_us, count))
        self._count_in_window += count
        self._evict(now_us)

    def _evict(self, now_us: float) -> None:
        horizon = now_us - self.window_us
        while self._events and self._events[0][0] <= horizon:
            _, count = self._events.popleft()
            self._count_in_window -= count

    def rate_pps(self, now_us: float) -> float:
        """Average events/second over the trailing window."""
        self._evict(now_us)
        return self._count_in_window * SEC / self.window_us

    def count(self, now_us: float) -> int:
        self._evict(now_us)
        return self._count_in_window

    def reset(self) -> None:
        self._events.clear()
        self._count_in_window = 0


class SlidingWindowMean:
    """Mean of sampled values over a sliding time window (used for CPU
    usage and RAPL power by the host controller)."""

    def __init__(self, window_us: float):
        if window_us <= 0:
            raise ConfigurationError("window must be positive")
        self.window_us = window_us
        self._samples: Deque[Tuple[float, float]] = deque()

    def observe(self, now_us: float, value: float) -> None:
        if self._samples and now_us < self._samples[-1][0]:
            raise ConfigurationError("observations must be time-ordered")
        self._samples.append((now_us, value))
        self._evict(now_us)

    def _evict(self, now_us: float) -> None:
        horizon = now_us - self.window_us
        while self._samples and self._samples[0][0] <= horizon:
            self._samples.popleft()

    def mean(self, now_us: float) -> float:
        """Mean of in-window samples; 0.0 when no samples remain."""
        self._evict(now_us)
        if not self._samples:
            return 0.0
        return sum(v for _, v in self._samples) / len(self._samples)

    def full(self, now_us: float) -> bool:
        """True once samples span (most of) the window — controllers wait
        for a full window before acting, the §9.1 'sustained' requirement."""
        self._evict(now_us)
        if not self._samples:
            return False
        return now_us - self._samples[0][0] >= 0.9 * self.window_us

    def reset(self) -> None:
        self._samples.clear()
