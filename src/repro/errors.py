"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError`, so callers
can catch everything from the library with a single ``except`` clause while
still being able to distinguish the failure domains below.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel.

    Examples: scheduling an event in the past, running a simulator that was
    already stopped, or re-entering :meth:`Simulator.run` from a callback.
    """


class ConfigurationError(ReproError):
    """Raised when a model is constructed with invalid parameters."""


class CapacityError(ReproError):
    """Raised when a device is offered load beyond its configured capacity
    in a context where overload is a programming error (e.g. analytic
    steady-state models evaluated past saturation with ``strict=True``)."""


class ProtocolError(ReproError):
    """Raised on malformed application protocol messages (KVS, Paxos, DNS)."""


class PlacementError(ReproError):
    """Raised when an on-demand placement request cannot be satisfied,
    e.g. shifting a workload to a device that is not programmed with it."""


class PowerModelError(ReproError):
    """Raised when a power model is queried in an invalid state, e.g.
    reading RAPL counters from a server model that was never started."""
