"""Server models with calibrated wall- and package-power.

Three concrete servers from the paper:

* ``make_i7_server``      — Intel Core i7-6700K, 4 cores @ 4GHz (§4.1), the
  platform of all the §4 power/throughput sweeps.
* ``make_xeon_2637_server`` — single-socket Xeon E5-2637 v4 (§5.4), idle 83W.
* ``make_xeon_2660_server`` — dual-socket Xeon E5-2660 v4 (§7), the RAPL
  characterization platform (56W idle / 91W one core / 134W full load).

A server's **wall power** is platform power (CPU + board, from its power
model) + NIC power + any installed accelerator cards.  **Package power**
(read by RAPL) is the platform part split across sockets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..sim import Simulator
from ..net.node import Node
from .cpu import CpuAccount
from .nic import Nic, NIC_INTEL_X520, NIC_MELLANOX_CX311A
from .rapl import RaplDomain, RaplReader


class SingleSocketAlphaModel:
    """P(u) = idle + (peak - idle) * u**alpha on one package.

    alpha < 1 reproduces the "power jumps at low utilization" behaviour the
    paper observes on both the i7 (§4.2, implied by the 80Kpps crossover)
    and the Xeon (§7 explicitly).
    """

    def __init__(self, idle_w: float, peak_w: float, alpha: float):
        if peak_w < idle_w:
            raise ConfigurationError("peak_w must be >= idle_w")
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.idle_w = idle_w
        self.peak_w = peak_w
        self.alpha = alpha

    @property
    def sockets(self) -> int:
        return 1

    def platform_power_w(self, cpu: CpuAccount) -> float:
        u = cpu.utilization
        return self.idle_w + (self.peak_w - self.idle_w) * (u ** self.alpha)

    def socket_power_w(self, cpu: CpuAccount, socket: int) -> float:
        if socket != 0:
            raise ConfigurationError("single-socket model has only socket 0")
        return self.platform_power_w(cpu)


class DualSocketXeonModel:
    """§7 piecewise model for the dual E5-2660 v4 box.

    Anchors (all from §7): idle 56W split evenly; first active core jumps to
    91W at full load and 86W at 10% load (activation = 30 + 5*u); each extra
    active core adds (134 - 91) / 27 ≈ 1.59W at full utilization.  The
    activation cost lands on *both* sockets almost equally ("Not only the
    power consumption of the socket with the running core increases, but
    also of the second socket, almost equally").
    """

    def __init__(self) -> None:
        self.idle_w = cal.XEON_2660_IDLE_W
        self.one_core_w = cal.XEON_2660_ONE_CORE_W
        self.full_w = cal.XEON_2660_FULL_LOAD_W
        total_cores = cal.XEON_2660_SOCKETS * cal.XEON_2660_CORES_PER_SOCKET
        # 30W fixed activation + 5W scaling with first-core utilization:
        # 10% -> 86W, 100% -> 91W (§7 anchors).
        self._activation_base_w = (
            cal.XEON_2660_ONE_CORE_10PCT_W - cal.XEON_2660_IDLE_W
        ) - 0.10 * self._activation_slope()
        self._extra_core_w = (self.full_w - self.one_core_w) / (total_cores - 1)

    @staticmethod
    def _activation_slope() -> float:
        # (91 - 86) / (1.0 - 0.1) ≈ 5.56 W per unit first-core utilization
        return (cal.XEON_2660_ONE_CORE_W - cal.XEON_2660_ONE_CORE_10PCT_W) / 0.9

    @property
    def sockets(self) -> int:
        return cal.XEON_2660_SOCKETS

    def platform_power_w(self, cpu: CpuAccount) -> float:
        active = cpu.active_cores
        if active <= 0:
            return self.idle_w
        # Utilization of the "first" core: the busiest possible packing.
        first_util = min(1.0, cpu.busy_cores)
        power = self.idle_w + self._activation_base_w + self._activation_slope() * first_util
        if active > 1:
            extra = active - 1.0
            # extra cores cost ~1.6W each at full utilization, scaled by the
            # average utilization of the additional cores.
            if active > 1e-9:
                avg_extra_util = max(0.0, cpu.busy_cores - first_util) / extra if extra > 0 else 0.0
            else:
                avg_extra_util = 0.0
            power += extra * self._extra_core_w * max(0.25, min(1.0, avg_extra_util))
        return power

    def socket_power_w(self, cpu: CpuAccount, socket: int) -> float:
        if socket not in (0, 1):
            raise ConfigurationError("dual-socket model has sockets 0 and 1")
        # §7: activation splits almost evenly; we use 55/45 toward the socket
        # hosting the running core.
        total = self.platform_power_w(cpu)
        idle_share = self.idle_w / 2.0
        dynamic = total - self.idle_w
        share = 0.55 if socket == 0 else 0.45
        return idle_share + dynamic * share


class Server(Node):
    """A server: CPU account + power model + NIC + accelerator cards.

    The server is also a network :class:`Node` so DES applications can be
    hosted on it; packet handling is delegated to a registered handler
    (usually the software application or the NIC driver).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        power_model,
        cores: int,
        nic: Optional[Nic] = None,
    ):
        super().__init__(sim, name)
        self.power_model = power_model
        self.cpu = CpuAccount(cores)
        self.nic = nic
        self._cards: List[Callable[[], float]] = []
        self._nic_utilization = 0.0
        self._packet_handler: Optional[Callable] = None
        self._rapl: Optional[RaplReader] = None

    # -- composition -----------------------------------------------------

    def install_card(self, power_probe: Callable[[], float]) -> None:
        """Install an accelerator card (e.g. a NetFPGA) whose power is added
        to the wall figure.  §4.2: 'the NIC is taken out of the server for
        LaKe's evaluation, as LaKe replaces it' — callers model that by
        constructing the server with ``nic=None``."""
        self._cards.append(power_probe)

    def set_nic_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("NIC utilization outside [0,1]")
        self._nic_utilization = utilization

    def set_packet_handler(self, handler: Callable) -> None:
        self._packet_handler = handler

    def receive(self, packet) -> None:
        super().receive(packet)
        if self._packet_handler is not None:
            self._packet_handler(packet)

    # -- power -------------------------------------------------------------

    def platform_power_w(self) -> float:
        """CPU + board power (what RAPL approximately covers)."""
        return self.power_model.platform_power_w(self.cpu)

    def wall_power_w(self) -> float:
        """What the SHW 3A meter at the socket would read (§4.1)."""
        power = self.platform_power_w()
        if self.nic is not None:
            power += self.nic.power_w(self._nic_utilization)
        for probe in self._cards:
            power += probe()
        return power

    def socket_power_w(self, socket: int) -> float:
        return self.power_model.socket_power_w(self.cpu, socket)

    # -- RAPL -------------------------------------------------------------

    def start_rapl(self, update_interval_us: float = 1_000.0) -> RaplReader:
        """Start the RAPL energy-counter integration for this server."""
        probes: Dict[RaplDomain, Callable[[], float]] = {
            RaplDomain.PACKAGE_0: lambda: self.socket_power_w(0)
        }
        if self.power_model.sockets > 1:
            probes[RaplDomain.PACKAGE_1] = lambda: self.socket_power_w(1)
        self._rapl = RaplReader(self.sim, probes, update_interval_us)
        return self._rapl

    @property
    def rapl(self) -> RaplReader:
        if self._rapl is None:
            raise ConfigurationError(f"RAPL not started on {self.name!r}")
        return self._rapl


# ---------------------------------------------------------------------------
# Factory helpers for the paper's three platforms.
# ---------------------------------------------------------------------------


def make_i7_server(
    sim: Simulator,
    name: str = "i7",
    nic: Optional[Nic] = NIC_MELLANOX_CX311A,
) -> Server:
    """The §4 base platform: i7-6700K, 39W idle with its NIC (§4.2), which
    puts the bare platform at 36W idle / 112W peak.  Build with ``nic=None``
    when a NetFPGA card replaces the NIC (the LaKe setup)."""
    model = SingleSocketAlphaModel(
        idle_w=cal.I7_IDLE_NO_NIC_W,
        peak_w=cal.I7_MEMCACHED_PEAK_W - cal.NIC_MELLANOX_CX311A_IDLE_W,
        alpha=nic.host_power_alpha if nic is not None else cal.MEMCACHED_POWER_ALPHA_MELLANOX,
    )
    return Server(sim, name, model, cores=cal.I7_6700K.cores, nic=nic)


def make_xeon_2637_server(sim: Simulator, name: str = "xeon-2637") -> Server:
    """§5.4 comparison platform: idle 83W without a NIC."""
    model = SingleSocketAlphaModel(
        idle_w=cal.XEON_E5_2637.idle_w,
        peak_w=cal.XEON_E5_2637.peak_w,
        alpha=0.6,
    )
    return Server(sim, name, model, cores=cal.XEON_E5_2637.cores, nic=None)


def make_xeon_2660_server(sim: Simulator, name: str = "xeon-2660") -> Server:
    """§7 RAPL characterization platform (dual E5-2660 v4)."""
    model = DualSocketXeonModel()
    return Server(
        sim,
        name,
        model,
        cores=cal.XEON_2660_SOCKETS * cal.XEON_2660_CORES_PER_SOCKET,
        nic=None,
    )
