"""CPU utilization accounting.

Applications (and co-located workloads like the ChainerMN job in Figure 6)
register *core allocations* — how many cores they hold and at what
utilization.  The server power model reads the aggregate; the host-controlled
on-demand controller reads the per-application figures (§9.1: "As long as the
application is running, the controller monitors its CPU usage").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError


@dataclass
class CoreAllocation:
    """One application's CPU footprint.

    ``cores`` may be fractional (a 0.5 allocation at utilization 1.0 equals
    one core at 50%).  ``utilization`` is the busy fraction of those cores.
    """

    app: str
    cores: float
    utilization: float

    def validate(self, total_cores: int) -> None:
        if self.cores < 0 or self.cores > total_cores:
            raise ConfigurationError(
                f"{self.app!r}: cores={self.cores} outside [0, {total_cores}]"
            )
        if not 0.0 <= self.utilization <= 1.0:
            raise ConfigurationError(
                f"{self.app!r}: utilization={self.utilization} outside [0, 1]"
            )

    @property
    def core_seconds_per_second(self) -> float:
        """Effective busy cores contributed by this allocation."""
        return self.cores * self.utilization


class CpuAccount:
    """Aggregates per-application core allocations on one server."""

    def __init__(self, total_cores: int):
        if total_cores <= 0:
            raise ConfigurationError("total_cores must be positive")
        self.total_cores = total_cores
        self._allocations: Dict[str, CoreAllocation] = {}

    def set_load(self, app: str, cores: float, utilization: float) -> None:
        """Set (replacing) the CPU footprint of ``app``."""
        alloc = CoreAllocation(app, cores, utilization)
        alloc.validate(self.total_cores)
        self._allocations[app] = alloc

    def clear_load(self, app: str) -> None:
        """Remove ``app``'s footprint (app stopped or shifted away)."""
        self._allocations.pop(app, None)

    def app_utilization(self, app: str) -> float:
        """Busy-core fraction of the whole machine attributable to ``app``."""
        alloc = self._allocations.get(app)
        if alloc is None:
            return 0.0
        return alloc.core_seconds_per_second / self.total_cores

    def app_allocation(self, app: str) -> CoreAllocation:
        try:
            return self._allocations[app]
        except KeyError:
            raise ConfigurationError(f"no allocation for app {app!r}") from None

    @property
    def busy_cores(self) -> float:
        """Total effective busy cores (capped at the physical count)."""
        total = sum(a.core_seconds_per_second for a in self._allocations.values())
        return min(total, float(self.total_cores))

    @property
    def active_cores(self) -> float:
        """Cores with *any* activity (drives the §7 activation jump)."""
        total = sum(a.cores for a in self._allocations.values() if a.utilization > 0)
        return min(total, float(self.total_cores))

    @property
    def utilization(self) -> float:
        """Machine-wide busy fraction in [0, 1]."""
        return self.busy_cores / self.total_cores

    @property
    def apps(self) -> Dict[str, CoreAllocation]:
        return dict(self._allocations)
