"""RAPL (Running Average Power Limit) counter model.

The paper reads RAPL both to characterize the Xeon server (§7) and as the
input signal of the host-controlled on-demand controller (§9.1: "We also
monitor the end-host's power consumption using running average power limit
(RAPL)").  Real RAPL exposes monotonically increasing energy counters per
package domain; power is obtained by differencing two reads.  We reproduce
that interface: :class:`RaplReader` integrates the server's modeled package
power into energy counters, and callers difference them.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from ..errors import PowerModelError
from ..units import to_seconds
from ..sim import Simulator


class RaplDomain(enum.Enum):
    """RAPL measurement domains (subset used by the paper)."""

    PACKAGE_0 = "package-0"
    PACKAGE_1 = "package-1"


class RaplReader:
    """Integrates per-domain power into RAPL-style energy counters.

    ``power_probes`` maps a domain to a zero-argument callable returning the
    domain's current power in watts (supplied by the server model).  The
    reader must be *advanced* (it samples on a simulator timer) before reads
    reflect recent activity — like real RAPL's update granularity.
    """

    def __init__(
        self,
        sim: Simulator,
        power_probes: Dict[RaplDomain, Callable[[], float]],
        update_interval_us: float = 1_000.0,
    ):
        if not power_probes:
            raise PowerModelError("RaplReader needs at least one domain probe")
        self._sim = sim
        self._probes = dict(power_probes)
        self._energy_j: Dict[RaplDomain, float] = {d: 0.0 for d in power_probes}
        self._last_power: Dict[RaplDomain, float] = {
            d: probe() for d, probe in power_probes.items()
        }
        self._last_update_us = sim.now
        self._handle = sim.call_every(update_interval_us, self._update, name="rapl")

    def _update(self) -> None:
        dt_s = to_seconds(self._sim.now - self._last_update_us)
        for domain, probe in self._probes.items():
            power = probe()
            # trapezoid between the last sampled power and the current one
            self._energy_j[domain] += 0.5 * (power + self._last_power[domain]) * dt_s
            self._last_power[domain] = power
        self._last_update_us = self._sim.now

    def energy_j(self, domain: RaplDomain) -> float:
        """Monotonic energy counter for ``domain`` (joules)."""
        try:
            return self._energy_j[domain]
        except KeyError:
            raise PowerModelError(f"domain {domain} not instrumented") from None

    def domains(self):
        return list(self._probes)

    def stop(self) -> None:
        self._handle.cancel()


class RaplPowerEstimator:
    """Differences two RAPL reads to estimate average power over a window —
    exactly what the host controller does every control period."""

    def __init__(self, reader: RaplReader, domain: RaplDomain, sim: Simulator):
        self._reader = reader
        self._domain = domain
        self._sim = sim
        self._last_energy: Optional[float] = None
        self._last_time_us: Optional[float] = None

    def read_power_w(self) -> Optional[float]:
        """Average power since the previous call; None on the first call."""
        energy = self._reader.energy_j(self._domain)
        now = self._sim.now
        result = None
        if self._last_energy is not None and now > self._last_time_us:
            result = (energy - self._last_energy) / to_seconds(now - self._last_time_us)
        self._last_energy = energy
        self._last_time_us = now
        return result
