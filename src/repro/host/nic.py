"""NIC models.

§4.2 found that the choice of commodity NIC changes *both* the host's peak
throughput and the shape of its power curve: with the Mellanox NIC the
LaKe crossover sat around 80Kpps; replacing it with an Intel X520 made the
host more power-efficient at low load (crossover >300Kpps) but capped its
peak throughput lower.  We model a NIC as (idle watts, peak watts, a host
power-curve exponent, and a host throughput cap).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import calibration as cal
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Nic:
    """A commodity NIC installed in a server."""

    name: str
    idle_w: float
    peak_w: float
    #: exponent of the *host* software power curve when driven through this
    #: NIC (interrupt moderation etc. change where the power is spent).
    host_power_alpha: float
    #: cap on host application throughput through this NIC (pps).
    host_peak_pps: float

    def power_w(self, utilization: float) -> float:
        """NIC power at a given traffic utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization {utilization} outside [0,1]")
        return self.idle_w + (self.peak_w - self.idle_w) * utilization


#: Mellanox MCX311A-XCCT — used for the KVS evaluation because the Intel NIC
#: was a performance bottleneck (§4.1).
NIC_MELLANOX_CX311A = Nic(
    name="Mellanox MCX311A-XCCT",
    idle_w=cal.NIC_MELLANOX_CX311A_IDLE_W,
    peak_w=cal.NIC_MELLANOX_CX311A_IDLE_W + 1.5,
    host_power_alpha=cal.MEMCACHED_POWER_ALPHA_MELLANOX,
    host_peak_pps=cal.MEMCACHED_PEAK_PPS_MELLANOX,
)

#: Intel X520 — the default NIC of the software setup (§4.1).
NIC_INTEL_X520 = Nic(
    name="Intel X520",
    idle_w=cal.NIC_INTEL_X520_IDLE_W,
    peak_w=cal.NIC_INTEL_X520_IDLE_W + 1.0,
    host_power_alpha=cal.MEMCACHED_POWER_ALPHA_INTEL,
    host_peak_pps=cal.MEMCACHED_PEAK_PPS_INTEL,
)
