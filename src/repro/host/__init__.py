"""Host (server) substrate.

Models the paper's three server platforms (§4.1, §5.4, §7) at the level the
paper measures them: wall power as a function of load, per-socket RAPL
counters, per-core activation costs, and the kernel-stack vs DPDK driver
distinction that dominates the Paxos software power curves (§4.3).
"""

from .cpu import CpuAccount, CoreAllocation
from .nic import Nic, NIC_INTEL_X520, NIC_MELLANOX_CX311A
from .rapl import RaplDomain, RaplReader
from .server import Server, make_i7_server, make_xeon_2660_server, make_xeon_2637_server

__all__ = [
    "CpuAccount",
    "CoreAllocation",
    "Nic",
    "NIC_INTEL_X520",
    "NIC_MELLANOX_CX311A",
    "RaplDomain",
    "RaplReader",
    "Server",
    "make_i7_server",
    "make_xeon_2660_server",
    "make_xeon_2637_server",
]
