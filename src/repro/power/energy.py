"""The §8 energy model (after Niccolini et al. [60]).

    E = Pd(f) · Td(W, f)  +  Ps · Ts  +  Pi · Ti

where ``Pd`` is the power while actively processing, ``Td`` the active time
for ``W`` packets at frequency ``f``, ``Ps``/``Ts`` the sleep-transition
power/time and ``Pi``/``Ti`` the idle power/time.  Packet rate is
``R = W / Td``.

In-network computing should be used when ``E_S`` (software) exceeds
``E_N`` (network).  :mod:`repro.core.energy_model` builds the tipping-point
analysis on top of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError


@dataclass(frozen=True)
class EnergyBreakdown:
    """The three terms of the §8 model, in joules."""

    active_j: float
    sleep_transition_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.active_j + self.sleep_transition_j + self.idle_j


class NiccoliniEnergyModel:
    """Evaluate E for a device described by power functions.

    ``active_power_w(rate_pps)`` is ``Pd`` as a function of the processed
    packet rate (the paper's curves from §4); ``idle_power_w`` is ``Pi``;
    ``sleep_power_w``/``sleep_transition_s`` describe ``Ps``/``Ts``.
    """

    def __init__(
        self,
        active_power_w: Callable[[float], float],
        idle_power_w: float,
        sleep_power_w: float = 0.0,
        sleep_transition_s: float = 0.0,
    ):
        if idle_power_w < 0 or sleep_power_w < 0 or sleep_transition_s < 0:
            raise ConfigurationError("power/time parameters must be >= 0")
        self._active_power_w = active_power_w
        self.idle_power_w = idle_power_w
        self.sleep_power_w = sleep_power_w
        self.sleep_transition_s = sleep_transition_s

    def active_power_w(self, rate_pps: float) -> float:
        if rate_pps < 0:
            raise ConfigurationError("rate must be >= 0")
        return self._active_power_w(rate_pps)

    def dynamic_power_w(self, rate_pps: float) -> float:
        """Pd(R) − Pi: the §6/§8 'absolute dynamic power consumption'."""
        return self.active_power_w(rate_pps) - self.idle_power_w

    def energy(
        self,
        packets: float,
        rate_pps: float,
        idle_s: float = 0.0,
        sleep_transitions: int = 0,
    ) -> EnergyBreakdown:
        """Energy to process ``packets`` at ``rate_pps``, plus idle time and
        sleep transitions."""
        if packets < 0 or idle_s < 0 or sleep_transitions < 0:
            raise ConfigurationError("packets/idle_s/transitions must be >= 0")
        if packets > 0 and rate_pps <= 0:
            raise ConfigurationError("positive work requires a positive rate")
        active_s = packets / rate_pps if packets > 0 else 0.0
        return EnergyBreakdown(
            active_j=self.active_power_w(rate_pps) * active_s if packets > 0 else 0.0,
            sleep_transition_j=self.sleep_power_w
            * self.sleep_transition_s
            * sleep_transitions,
            idle_j=self.idle_power_w * idle_s,
        )


def ops_per_watt(rate_pps: float, power_w: float) -> float:
    """Operations per watt — the §6 efficiency metric (software 10K's/W,
    FPGA 100K's/W, ASIC 10M's/W for Paxos messages)."""
    if power_w <= 0:
        raise ConfigurationError("power must be positive")
    if rate_pps < 0:
        raise ConfigurationError("rate must be >= 0")
    return rate_pps / power_w
