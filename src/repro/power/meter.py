"""Wall power meter.

§4.1: "Power measurements were taken using a SHW 3A power meter" and
"Average throughput was measured at the granularity of a second".  The
meter samples a power probe periodically, accumulates a time series, and
integrates it to energy.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..sim import Simulator, TimeSeries
from ..sim.recorder import PeriodicSampler
from ..units import sec


class PowerMeter:
    """Samples ``probe()`` (watts) every ``interval_us`` into a series."""

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        interval_us: float = sec(1.0),
        name: str = "power-meter",
    ):
        if interval_us <= 0:
            raise ConfigurationError("meter interval must be positive")
        self._sampler = PeriodicSampler(sim, probe, interval_us, name=name)
        self.name = name

    @property
    def series(self) -> TimeSeries:
        return self._sampler.series

    def mean_power_w(self, start_us: float = None, end_us: float = None) -> float:
        return self.series.mean(start_us, end_us)

    def energy_j(self) -> float:
        """Trapezoidal energy over the whole recording."""
        return self.series.integrate_seconds()

    def stop(self) -> None:
        self._sampler.stop()
