"""Power measurement and energy accounting.

* :mod:`repro.power.meter` — the wall power meter (SHW 3A, §4.1) as a
  periodic sampler over any ``power_w()`` probe.
* :mod:`repro.power.energy` — the §8 energy model
  ``E = Pd(f)·Td(W,f) + Ps·Ts + Pi·Ti`` and ops/W metrics.
"""

from .meter import PowerMeter
from .energy import EnergyBreakdown, NiccoliniEnergyModel, ops_per_watt

__all__ = ["PowerMeter", "EnergyBreakdown", "NiccoliniEnergyModel", "ops_per_watt"]
