"""Experiment harness: one runner per paper table/figure.

Fast analytic experiments (Figures 3–5, §5–§8, §9.3–§10) live in
:mod:`repro.experiments.figures`; the two DES transition experiments
(Figures 6 and 7) live in :mod:`repro.experiments.transitions`.  Every
runner returns a result object with the raw series plus a ``render()``
method that prints the rows/series the paper reports.
"""

from .reporting import format_table, bucket_rate_series
from .sweep import SweepPoint, sweep_model, sweep_models
from . import figures
from .plots import matplotlib_available, save_sweep_png, save_transition_png
from .transitions import run_figure6, run_figure7, Figure6Result, Figure7Result

__all__ = [
    "format_table",
    "bucket_rate_series",
    "SweepPoint",
    "sweep_model",
    "sweep_models",
    "figures",
    "matplotlib_available",
    "save_sweep_png",
    "save_transition_png",
    "run_figure6",
    "run_figure7",
    "Figure6Result",
    "Figure7Result",
]
