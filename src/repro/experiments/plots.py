"""Optional matplotlib renderers for the transition figures.

Text rendering (``result.render()``) is the contract everywhere in this
package; these helpers additionally emit the Figure 6/7 timeline plots as
PNGs **when matplotlib happens to be importable**.  The import is guarded —
matplotlib is not a dependency, and nothing here may be imported at module
scope by code on the text path.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

from ..errors import ConfigurationError

PathLike = Union[str, pathlib.Path]


def matplotlib_available() -> bool:
    """True when matplotlib can be imported (never raises)."""
    try:
        import matplotlib  # noqa: F401
    except Exception:
        return False
    return True


def _require_pyplot():
    try:
        import matplotlib

        matplotlib.use("Agg", force=False)  # headless: never require a display
        import matplotlib.pyplot as plt
    except Exception as exc:  # pragma: no cover - depends on environment
        raise ConfigurationError(
            "matplotlib is not importable; install it to render PNGs "
            "(text rendering via result.render() needs no extra packages)"
        ) from exc
    return plt


def save_sweep_png(result, path: PathLike, title: Optional[str] = None) -> pathlib.Path:
    """Plot a scenario sweep's tipping-point chart to ``path``.

    Accepts a :class:`~repro.scenarios.sweep.ScenarioSweepResult`: for each
    setting of the non-ramp axes it draws the software- and hardware-pinned
    ops/W curves along the ramp axis, with the crossover marked — the
    rack-scale §9.4 rendition of the paper's Figure 5 comparison.
    """
    plt = _require_pyplot()
    spec = result.spec
    axis = spec.resolved_tip_axis()
    other_params = [a.param for a in spec.axes if a.param != axis]

    groups = {}
    for pt in result.points:
        key = tuple(pt.params[p] for p in other_params)
        groups.setdefault(key, []).append(pt)
    tips = {
        tuple(tip.fixed[p] for p in other_params): tip
        for tip in result.tipping_points()
    }

    fig, ax = plt.subplots(figsize=(7.0, 4.5))
    colors = plt.rcParams["axes.prop_cycle"].by_key()["color"]
    for i, (key, pts) in enumerate(groups.items()):
        color = colors[i % len(colors)]
        label = (
            ", ".join(f"{p}={v}" for p, v in zip(other_params, key)) or "rack"
        )
        xs = [pt.params[axis] for pt in pts]
        ax.plot(
            xs,
            [pt.software.ops_per_watt for pt in pts],
            color=color,
            linestyle="--",
            label=f"{label} (SW)",
        )
        ax.plot(
            xs,
            [pt.hardware.ops_per_watt for pt in pts],
            color=color,
            linestyle="-",
            label=f"{label} (HW)",
        )
        if all(pt.ondemand is not None for pt in pts):
            ax.plot(
                xs,
                [pt.ondemand.ops_per_watt for pt in pts],
                color=color,
                linestyle="-.",
                linewidth=1.0,
                label=f"{label} (on demand)",
            )
        tip = tips.get(key)
        if tip is not None and tip.crossover is not None:
            ax.axvline(
                tip.crossover, color=color, linestyle=":", linewidth=1.0
            )
    ax.set_xlabel(axis)
    ax.set_ylabel("ops/W")
    ax.legend(fontsize="small")
    fig.suptitle(title or f"{spec.name}: software vs hardware ops/W")
    fig.tight_layout()

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    fig.savefig(out, dpi=120)
    plt.close(fig)
    return out


def save_transition_png(result, path: PathLike, title: Optional[str] = None) -> pathlib.Path:
    """Plot a Figure 6/7-shaped result (throughput/latency[/power] series
    plus shift markers) to ``path``.

    Accepts any object with ``throughput_series``, ``latency_series`` and
    ``shift_times_us`` attributes — :class:`Figure6Result`,
    :class:`Figure7Result` and :class:`~repro.scenarios.HostResult` all
    qualify; a ``power_series`` attribute adds the third panel.
    """
    plt = _require_pyplot()
    power_series = getattr(result, "power_series", None)
    n_panels = 3 if power_series else 2
    fig, axes = plt.subplots(
        n_panels, 1, sharex=True, figsize=(7.0, 2.2 * n_panels)
    )

    def seconds(series):
        xs = [t / 1e6 for t, _ in series]
        ys = [v for _, v in series]
        return xs, ys

    xs, ys = seconds(result.throughput_series)
    axes[0].plot(xs, [y / 1e3 for y in ys], color="tab:blue")
    axes[0].set_ylabel("throughput\n[kpps]")

    lat = [(t, v) for t, v in result.latency_series if v is not None]
    xs, ys = seconds(lat)
    axes[1].plot(xs, ys, color="tab:green")
    axes[1].set_ylabel("latency\n[µs]")

    if power_series:
        xs, ys = seconds(power_series)
        axes[2].plot(xs, ys, color="tab:orange")
        axes[2].set_ylabel("power\n[W]")

    for axis in axes:
        for shift in result.shift_times_us:
            axis.axvline(shift / 1e6, color="red", linestyle="--", linewidth=1.0)
    axes[-1].set_xlabel("time [s]")
    if title is None:
        title = "software ↔ hardware transition"
    fig.suptitle(title)
    fig.tight_layout()

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    fig.savefig(out, dpi=120)
    plt.close(fig)
    return out
