"""Plain-text reporting helpers used by every experiment runner."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError
from ..units import SEC


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width text table (right-aligned numerics)."""
    if not headers:
        raise ConfigurationError("table needs headers")
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def bucket_rate_series(
    times_us: Sequence[float], window_us: float, end_us: float
) -> List[tuple]:
    """Convert event timestamps into a (t_us, rate_pps) series.

    Used to turn client response timestamps into the throughput timelines
    of Figures 6 and 7.
    """
    if window_us <= 0:
        raise ConfigurationError("window must be positive")
    buckets = {}
    for t in times_us:
        buckets[int(t // window_us)] = buckets.get(int(t // window_us), 0) + 1
    n_buckets = int(end_us // window_us) + 1
    series = []
    for i in range(n_buckets):
        rate = buckets.get(i, 0) * SEC / window_us
        series.append((i * window_us, rate))
    return series


def bucket_mean_series(
    samples: Sequence[tuple], window_us: float, end_us: float
) -> List[tuple]:
    """Average (t_us, value) samples into fixed windows (None when empty)."""
    if window_us <= 0:
        raise ConfigurationError("window must be positive")
    sums = {}
    counts = {}
    for t, v in samples:
        idx = int(t // window_us)
        sums[idx] = sums.get(idx, 0.0) + v
        counts[idx] = counts.get(idx, 0) + 1
    series = []
    for i in range(int(end_us // window_us) + 1):
        if counts.get(i):
            series.append((i * window_us, sums[i] / counts[i]))
        else:
            series.append((i * window_us, None))
    return series
