"""Plain-text reporting helpers used by every experiment runner.

The series-bucketing helpers (``bucket_rate_series``,
``bucket_mean_series``) live in :mod:`repro.sim.recorder` — the scenario
builder needs them below the experiments layer — and are re-exported here
for compatibility.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError
from ..sim.recorder import bucket_mean_series, bucket_rate_series  # noqa: F401

__all__ = ["format_table", "bucket_rate_series", "bucket_mean_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width text table (right-aligned numerics)."""
    if not headers:
        raise ConfigurationError("table needs headers")
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


