"""Offered-load sweeps over steady-state models — the Figure 3/5 engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from ..steady.base import SteadyModel


@dataclass(frozen=True)
class SweepPoint:
    """One (offered load, measurements) sample."""

    offered_pps: float
    achieved_pps: float
    power_w: float
    latency_us: float
    ops_per_watt: float


def sweep_model(model: SteadyModel, rates_pps: Sequence[float]) -> List[SweepPoint]:
    """Evaluate a model across offered rates.

    A model reporting non-positive power while offered load is a
    misconfiguration (negative idle draw, a broken curve fit) and raises
    :class:`ConfigurationError` rather than silently charting it as
    0 ops/W ("infinitely bad efficiency"); only the 0-pps point keeps a
    well-defined ``ops_per_watt=0.0``.
    """
    if not rates_pps:
        raise ConfigurationError("empty rate list")
    points = []
    for rate in rates_pps:
        power = model.power_at(rate)
        if power <= 0.0 and rate > 0.0:
            raise ConfigurationError(
                f"model {model.name!r} reports non-positive power "
                f"({power:.3f}W) at offered load {rate:.0f} pps"
            )
        points.append(
            SweepPoint(
                offered_pps=rate,
                achieved_pps=model.achieved_pps(rate),
                power_w=power,
                latency_us=model.latency_at(rate),
                ops_per_watt=model.achieved_pps(rate) / power if power > 0 else 0.0,
            )
        )
    return points


def sweep_models(
    models: Dict[str, SteadyModel], rates_pps: Sequence[float]
) -> Dict[str, List[SweepPoint]]:
    """Sweep several models over the same rates (one figure's curve set)."""
    return {name: sweep_model(model, rates_pps) for name, model in models.items()}


def linspace_rates(max_pps: float, steps: int = 21) -> List[float]:
    """Evenly spaced offered rates 0..max (inclusive)."""
    if steps < 2:
        raise ConfigurationError("steps must be >= 2")
    if max_pps <= 0:
        raise ConfigurationError("max rate must be positive")
    return [max_pps * i / (steps - 1) for i in range(steps)]
