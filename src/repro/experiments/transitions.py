"""The DES transition experiments: Figures 6 and 7.

These run the full simulated substrate: real protocol implementations on a
client/switch/server topology, live controllers, RAPL/power metering, and
they return the same three timelines the paper plots (throughput, latency,
power) plus the red transition lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import calibration as cal
from ..apps.kvs import KvsClient, LakeKvs, SoftwareMemcached
from ..apps.paxos import PaxosClient
from ..apps.paxos.deployment import (
    LOGICAL_LEADER,
    HardwarePaxosRole,
    LearnerGapScanner,
    PaxosDeployment,
    SoftwarePaxosRole,
    _Directory,
)
from ..apps.paxos.roles import AcceptorState, LeaderState, LearnerState
from ..core.host_controller import HostController, HostControllerConfig
from ..core.ondemand import OnDemandService
from ..core.paxos_controller import PaxosShiftController
from ..host import make_i7_server
from ..hw.fpga import make_lake_fpga, make_p4xos_fpga
from ..net.classifier import ClassifierRule, PacketClassifier
from ..net.node import CallbackNode
from ..net.packet import TrafficClass
from ..net.switch import Switch
from ..net.topology import Topology
from ..sim import RngStreams, Simulator
from ..sim.recorder import PeriodicSampler
from ..units import kpps, msec, sec
from ..workloads.colocated import ChainerMNWorkload
from ..workloads.etc import EtcWorkload
from .reporting import bucket_mean_series, bucket_rate_series

# ---------------------------------------------------------------------------
# Figure 6: shifting the KVS.
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    """The three Figure 6 timelines plus the transition markers."""

    duration_us: float
    throughput_series: List[Tuple[float, float]]   # (t_us, pps)
    latency_series: List[Tuple[float, Optional[float]]]  # (t_us, µs)
    power_series: List[Tuple[float, float]]        # (t_us, W) — RAPL/CPU
    shift_times_us: List[float]
    hw_hits: int
    hw_miss_forwards: int
    client_responses: int
    offered_pps: float

    def render(self) -> str:
        lines = ["Figure 6: KVS software<->hardware transition"]
        lines.append(
            f"transitions at: "
            + ", ".join(f"{t / 1e6:.2f}s" for t in self.shift_times_us)
        )
        lines.append(f"responses: {self.client_responses} (offered {self.offered_pps:.0f}pps)")
        lines.append("t[s]  throughput[kpps]  latency[us]  power[W]")
        for (t, thr), (_, lat), (_, pw) in zip(
            self.throughput_series, self.latency_series, self.power_series
        ):
            lat_text = f"{lat:8.1f}" if lat is not None else "       -"
            lines.append(f"{t / 1e6:5.1f}  {thr / 1e3:16.1f}  {lat_text}  {pw:8.1f}")
        return "\n".join(lines)

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        values = [
            v for t, v in self.latency_series if v is not None and start_us <= t < end_us
        ]
        if not values:
            raise ValueError("no latency samples in window")
        return sum(values) / len(values)

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        values = [v for t, v in self.throughput_series if start_us <= t < end_us]
        if not values:
            raise ValueError("no throughput samples in window")
        return sum(values) / len(values)


def run_figure6(
    duration_s: float = 12.0,
    rate_kpps: float = 16.0,
    chainer_start_s: float = 2.0,
    chainer_stop_s: float = 7.5,
    keyspace: int = 50_000,
    seed: int = 42,
    power_save: bool = False,
    bucket_ms: float = 250.0,
) -> Figure6Result:
    """Reproduce Figure 6: host-controlled KVS shift under a co-located
    ChainerMN job, ETC arrivals, RAPL-driven controller.

    Defaults compress the paper's 35s trace to 12s (the controller windows
    are the paper's 3s); ``power_save=False`` matches the paper ("Clock
    gating and memories reset are not enabled in this experiment").
    """
    sim = Simulator()
    streams = RngStreams(seed)

    # -- server with the LaKe card replacing its NIC (§4.2)
    server = make_i7_server(sim, name="kvs-server", nic=None)
    card = make_lake_fpga()
    server.install_card(card.power_w)
    memcached = SoftwareMemcached(sim, server)
    lake = LakeKvs(sim, card, server, memcached, rng=streams.get("lake.latency"))
    lake.disable(power_save=power_save)

    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(
            TrafficClass.MEMCACHED, hardware=lake.offer, host=memcached.offer
        )
    )
    server.set_packet_handler(classifier.classify)

    # -- workload: mutilate-style client with ETC arrivals (§9.2)
    etc = EtcWorkload(keyspace=keyspace, seed=seed)
    etc.preload(memcached.store.set, count=keyspace)
    switch = Switch(sim, "tor")
    topo = Topology(sim)
    topo.add(switch)
    topo.add(server)
    client = KvsClient(
        sim,
        "client",
        server_name="kvs-server",
        key_sampler=etc.key,
        value_sampler=etc.value,
        set_fraction=etc.set_fraction,
        rng=streams.get("client.arrivals"),
    )
    topo.add(client)
    topo.connect_via_switch("tor", "kvs-server")
    topo.connect_via_switch("tor", "client")
    client.set_rate(kpps(rate_kpps))

    # -- co-located ChainerMN job (Figure 6)
    chainer = ChainerMNWorkload(sim, server, cores=2.5, utilization=0.95)
    chainer.schedule(sec(chainer_start_s), sec(chainer_stop_s))

    # -- on-demand service + host controller (§9.1)
    service = OnDemandService(
        sim,
        "kvs",
        classifier=classifier,
        traffic_class=TrafficClass.MEMCACHED,
        to_hardware=lake.enable,
        to_software=lambda: lake.disable(power_save=power_save),
    )
    server.start_rapl(update_interval_us=msec(10.0))
    controller = HostController(
        sim,
        server,
        service,
        config=HostControllerConfig(rate_down_pps=cal.NETCTL_KVS_DOWN_PPS),
        classifier=classifier,
        traffic_class=TrafficClass.MEMCACHED,
    )

    # -- instrumentation: the paper reads CPU power from RAPL (Figure 6)
    power_sampler = PeriodicSampler(
        sim, server.platform_power_w, msec(50.0), name="rapl-power"
    )

    duration_us = sec(duration_s)
    sim.run_until(duration_us)
    controller.stop()

    bucket_us = msec(bucket_ms)
    throughput = bucket_rate_series(client.response_times_us, bucket_us, duration_us)
    latency = bucket_mean_series(
        list(zip(client.latency_series.times, client.latency_series.values)),
        bucket_us,
        duration_us,
    )
    power = bucket_mean_series(
        list(zip(power_sampler.series.times, power_sampler.series.values)),
        bucket_us,
        duration_us,
    )
    power = [(t, v if v is not None else 0.0) for t, v in power]
    return Figure6Result(
        duration_us=duration_us,
        throughput_series=throughput,
        latency_series=latency,
        power_series=power,
        shift_times_us=service.shift_times_us(),
        hw_hits=lake.l1.hits + (lake.l2.hits if lake.l2 is not None else 0),
        hw_miss_forwards=lake.miss_forwards,
        client_responses=client.responses,
        offered_pps=kpps(rate_kpps),
    )


# ---------------------------------------------------------------------------
# Figure 7: shifting the Paxos leader.
# ---------------------------------------------------------------------------


@dataclass
class Figure7Result:
    duration_us: float
    throughput_series: List[Tuple[float, float]]
    latency_series: List[Tuple[float, Optional[float]]]
    shift_times_us: List[float]
    decided: int
    retries: int
    stall_us: List[float] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Figure 7: Paxos leader software<->hardware transition"]
        lines.append(
            "transitions at: "
            + ", ".join(f"{t / 1e6:.2f}s" for t in self.shift_times_us)
        )
        lines.append(f"decisions: {self.decided}, client retries: {self.retries}")
        if self.stall_us:
            lines.append(
                "post-shift stalls: "
                + ", ".join(f"{s / 1e3:.0f}ms" for s in self.stall_us)
                + f" (paper: ~{cal.PAXOS_CLIENT_TIMEOUT_MS:.0f}ms client timeout)"
            )
        lines.append("t[s]  throughput[kpps]  latency[us]")
        for (t, thr), (_, lat) in zip(self.throughput_series, self.latency_series):
            lat_text = f"{lat:8.1f}" if lat is not None else "       -"
            lines.append(f"{t / 1e6:5.2f}  {thr / 1e3:16.1f}  {lat_text}")
        return "\n".join(lines)

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        values = [
            v for t, v in self.latency_series if v is not None and start_us <= t < end_us
        ]
        if not values:
            raise ValueError("no latency samples in window")
        return sum(values) / len(values)

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        values = [v for t, v in self.throughput_series if start_us <= t < end_us]
        if not values:
            raise ValueError("no throughput samples in window")
        return sum(values) / len(values)


def run_figure7(
    duration_s: float = 5.0,
    shift_to_hw_s: float = 1.5,
    shift_to_sw_s: float = 3.5,
    n_clients: int = 3,
    client_window: int = 1,
    n_acceptors: int = 3,
    recovery_window: int = 512,
    seed: int = 7,
    bucket_ms: float = 50.0,
) -> Figure7Result:
    """Reproduce Figure 7: leader shift via forwarding-rule rewrite, new
    leader sequence recovery, ~100ms client-timeout stall, halved latency
    and higher closed-loop throughput in hardware."""
    sim = Simulator()
    topo = Topology(sim)
    switch = Switch(sim, "tor")
    topo.add(switch)

    acceptor_names = [f"acceptor{i}" for i in range(n_acceptors)]
    learner_names = ["learner0"]
    directory = _Directory(acceptor_names, learner_names)

    # -- software leader on an i7 host
    sw_server = make_i7_server(sim, name="sw-leader")
    sw_leader = SoftwarePaxosRole(
        sim,
        sw_server,
        LeaderState("sw-leader", 0, n_acceptors),
        directory,
        capacity_pps=cal.LIBPAXOS_LEADER_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEADER_STACK_US,
        app_name="libpaxos-leader",
    )
    sw_server.set_packet_handler(sw_leader.offer)
    topo.add(sw_server)
    topo.connect_via_switch("tor", "sw-leader")

    # -- hardware leader: P4xos on a NetFPGA behind its own port
    hw_card = make_p4xos_fpga()
    hw_node = CallbackNode(sim, "hw-leader", on_packet=lambda p: hw_leader.offer(p))
    hw_leader = HardwarePaxosRole(
        sim,
        hw_card,
        hw_node,
        LeaderState("hw-leader", 1, n_acceptors),
        directory,
    )
    topo.add(hw_node)
    topo.connect_via_switch("tor", "hw-leader")

    # -- software acceptors and learner
    roles = []
    for name in acceptor_names:
        server = make_i7_server(sim, name=name)
        role = SoftwarePaxosRole(
            sim,
            server,
            AcceptorState(name, recovery_window=recovery_window),
            directory,
            capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
            app_name=f"acceptor.{name}",
        )
        server.set_packet_handler(role.offer)
        topo.add(server)
        topo.connect_via_switch("tor", name)
        roles.append(role)

    learner_server = make_i7_server(sim, name="learner0")
    learner_role = SoftwarePaxosRole(
        sim,
        learner_server,
        LearnerState("learner0", n_acceptors),
        directory,
        capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEARNER_STACK_US,
        app_name="learner",
    )
    learner_server.set_packet_handler(learner_role.offer)
    topo.add(learner_server)
    topo.connect_via_switch("tor", "learner0")
    gap_scanner = LearnerGapScanner(sim, learner_role)

    # -- deployment + centralized shift controller (§9.2)
    deployment = PaxosDeployment(switch)
    deployment.register_leader("sw-leader", sw_leader)
    deployment.register_leader("hw-leader", hw_leader)
    deployment.activate_leader("sw-leader")
    controller = PaxosShiftController(
        sim,
        switch,
        deployment,
        software_node="sw-leader",
        hardware_node="hw-leader",
        automatic=False,
    )
    controller.schedule_shift(sec(shift_to_hw_s), to_hardware=True)
    controller.schedule_shift(sec(shift_to_sw_s), to_hardware=False)

    # -- closed-loop clients
    streams = RngStreams(seed)
    clients = []
    for i in range(n_clients):
        client = PaxosClient(sim, f"pxclient{i}", rng=streams.get(f"client{i}"))
        topo.add(client)
        topo.connect_via_switch("tor", client.name)
        clients.append(client)
    # start after a short warm-up so the software leader finished phase 1
    for client in clients:
        sim.schedule_at(
            msec(20.0),
            lambda c=client: c.start_closed_loop(client_window),
            name="client.start",
        )

    duration_us = sec(duration_s)
    sim.run_until(duration_us)
    controller.stop()
    gap_scanner.stop()

    decision_times = sorted(
        t for client in clients for t in client.decision_times_us
    )
    latency_samples = []
    for client in clients:
        latency_samples.extend(
            zip(client.latency_series.times, client.latency_series.values)
        )
    latency_samples.sort()
    bucket_us = msec(bucket_ms)
    throughput = bucket_rate_series(decision_times, bucket_us, duration_us)
    latency = bucket_mean_series(latency_samples, bucket_us, duration_us)

    # measure the post-shift stall: the largest decision gap in the 300ms
    # following each shift (in-flight decisions may land just after the
    # rule flip; the stall is the subsequent silence until client retries)
    stalls = []
    for shift_time in controller.shift_times_us:
        window = [shift_time] + [
            t for t in decision_times if shift_time < t <= shift_time + msec(300.0)
        ]
        if len(window) > 1:
            gaps = [b - a for a, b in zip(window, window[1:])]
            stalls.append(max(gaps))
    return Figure7Result(
        duration_us=duration_us,
        throughput_series=throughput,
        latency_series=latency,
        shift_times_us=list(controller.shift_times_us),
        decided=sum(c.decided for c in clients),
        retries=sum(c.retries for c in clients),
        stall_us=stalls,
    )
