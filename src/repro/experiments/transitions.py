"""The DES transition experiments: Figures 6 and 7.

These run the full simulated substrate: real protocol implementations on a
client/switch/server topology, live controllers, RAPL/power metering, and
they return the same three timelines the paper plots (throughput, latency,
power) plus the red transition lines.

Since the scenario-engine refactor the runners no longer wire anything by
hand: each figure is a named :class:`~repro.scenarios.ScenarioSpec` in
:mod:`repro.scenarios.registry`, materialized and executed by the
:class:`~repro.scenarios.ScenarioBuilder`; this module only adapts the
generic :class:`~repro.scenarios.ScenarioResult` into the figure-shaped
result objects the benchmarks and plots consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import calibration as cal
from ..scenarios import ScenarioBuilder, ScenarioResult, windowed_mean
from ..scenarios.registry import build_spec

# ---------------------------------------------------------------------------
# Figure 6: shifting the KVS.
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    """The three Figure 6 timelines plus the transition markers."""

    duration_us: float
    throughput_series: List[Tuple[float, float]]   # (t_us, pps)
    latency_series: List[Tuple[float, Optional[float]]]  # (t_us, µs)
    power_series: List[Tuple[float, float]]        # (t_us, W) — RAPL/CPU
    shift_times_us: List[float]
    hw_hits: int
    hw_miss_forwards: int
    client_responses: int
    offered_pps: float

    def render(self) -> str:
        lines = ["Figure 6: KVS software<->hardware transition"]
        lines.append(
            f"transitions at: "
            + ", ".join(f"{t / 1e6:.2f}s" for t in self.shift_times_us)
        )
        lines.append(f"responses: {self.client_responses} (offered {self.offered_pps:.0f}pps)")
        lines.append("t[s]  throughput[kpps]  latency[us]  power[W]")
        for (t, thr), (_, lat), (_, pw) in zip(
            self.throughput_series, self.latency_series, self.power_series
        ):
            lat_text = f"{lat:8.1f}" if lat is not None else "       -"
            lines.append(f"{t / 1e6:5.1f}  {thr / 1e3:16.1f}  {lat_text}  {pw:8.1f}")
        return "\n".join(lines)

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.latency_series, start_us, end_us, "latency")

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.throughput_series, start_us, end_us, "throughput")

    def save_png(self, path) -> "object":
        """Render the three timelines as a PNG (requires matplotlib; the
        text ``render()`` stays the dependency-free contract)."""
        from .plots import save_transition_png

        return save_transition_png(
            self, path, title="Figure 6: KVS software ↔ hardware transition"
        )


def run_figure6(
    duration_s: float = 12.0,
    rate_kpps: float = 16.0,
    chainer_start_s: float = 2.0,
    chainer_stop_s: float = 7.5,
    keyspace: int = 50_000,
    seed: int = 42,
    power_save: bool = False,
    bucket_ms: float = 250.0,
) -> Figure6Result:
    """Reproduce Figure 6: host-controlled KVS shift under a co-located
    ChainerMN job, ETC arrivals, RAPL-driven controller.

    Defaults compress the paper's 35s trace to 12s (the controller windows
    are the paper's 3s); ``power_save=False`` matches the paper ("Clock
    gating and memories reset are not enabled in this experiment").
    """
    spec = build_spec(
        "fig6-kvs-transition",
        duration_s=duration_s,
        rate_kpps=rate_kpps,
        chainer_start_s=chainer_start_s,
        chainer_stop_s=chainer_stop_s,
        keyspace=keyspace,
        seed=seed,
        power_save=power_save,
        bucket_ms=bucket_ms,
    )
    result = ScenarioBuilder(spec).run()
    return _figure6_result(result)


def _figure6_result(result: ScenarioResult) -> Figure6Result:
    host = result.hosts[0]
    return Figure6Result(
        duration_us=result.duration_us,
        throughput_series=host.throughput_series,
        latency_series=host.latency_series,
        power_series=host.power_series,
        shift_times_us=host.shift_times_us,
        hw_hits=host.hw_hits,
        hw_miss_forwards=host.hw_miss_forwards,
        client_responses=host.responses,
        offered_pps=host.offered_pps,
    )


# ---------------------------------------------------------------------------
# Figure 7: shifting the Paxos leader.
# ---------------------------------------------------------------------------


@dataclass
class Figure7Result:
    duration_us: float
    throughput_series: List[Tuple[float, float]]
    latency_series: List[Tuple[float, Optional[float]]]
    shift_times_us: List[float]
    decided: int
    retries: int
    stall_us: List[float] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Figure 7: Paxos leader software<->hardware transition"]
        lines.append(
            "transitions at: "
            + ", ".join(f"{t / 1e6:.2f}s" for t in self.shift_times_us)
        )
        lines.append(f"decisions: {self.decided}, client retries: {self.retries}")
        if self.stall_us:
            lines.append(
                "post-shift stalls: "
                + ", ".join(f"{s / 1e3:.0f}ms" for s in self.stall_us)
                + f" (paper: ~{cal.PAXOS_CLIENT_TIMEOUT_MS:.0f}ms client timeout)"
            )
        lines.append("t[s]  throughput[kpps]  latency[us]")
        for (t, thr), (_, lat) in zip(self.throughput_series, self.latency_series):
            lat_text = f"{lat:8.1f}" if lat is not None else "       -"
            lines.append(f"{t / 1e6:5.2f}  {thr / 1e3:16.1f}  {lat_text}")
        return "\n".join(lines)

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.latency_series, start_us, end_us, "latency")

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.throughput_series, start_us, end_us, "throughput")

    def save_png(self, path) -> "object":
        """Render the timelines as a PNG (requires matplotlib; the text
        ``render()`` stays the dependency-free contract)."""
        from .plots import save_transition_png

        return save_transition_png(
            self, path, title="Figure 7: Paxos leader software ↔ hardware transition"
        )


def run_figure7(
    duration_s: float = 5.0,
    shift_to_hw_s: float = 1.5,
    shift_to_sw_s: float = 3.5,
    n_clients: int = 3,
    client_window: int = 1,
    n_acceptors: int = 3,
    recovery_window: int = 512,
    seed: int = 7,
    bucket_ms: float = 50.0,
) -> Figure7Result:
    """Reproduce Figure 7: leader shift via forwarding-rule rewrite, new
    leader sequence recovery, ~100ms client-timeout stall, halved latency
    and higher closed-loop throughput in hardware."""
    spec = build_spec(
        "fig7-paxos-transition",
        duration_s=duration_s,
        shift_to_hw_s=shift_to_hw_s,
        shift_to_sw_s=shift_to_sw_s,
        n_clients=n_clients,
        client_window=client_window,
        n_acceptors=n_acceptors,
        recovery_window=recovery_window,
        seed=seed,
        bucket_ms=bucket_ms,
    )
    result = ScenarioBuilder(spec).run()
    paxos = result.paxos
    return Figure7Result(
        duration_us=result.duration_us,
        throughput_series=paxos.throughput_series,
        latency_series=paxos.latency_series,
        shift_times_us=paxos.shift_times_us,
        decided=paxos.decided,
        retries=paxos.retries,
        stall_us=paxos.stall_us,
    )
