"""Analytic experiment runners — one per paper figure/table.

Each function returns a result object carrying the raw series plus a
``render()`` producing the text the benchmark harness prints.  DES-based
Figure 6/7 runners live in :mod:`repro.experiments.transitions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import calibration as cal
from ..core.energy_model import (
    TippingPointAnalysis,
    TorSwitchAnalysis,
    tipping_point,
    tor_switch_analysis,
)
from ..core.placement import ApplicationProfile, PlacementAdvisor
from ..host import make_xeon_2660_server
from ..host.nic import NIC_INTEL_X520, NIC_MELLANOX_CX311A, Nic
from ..hw.asic import TofinoProgram, TofinoSwitch
from ..hw.fpga import PlatformMode, make_lake_fpga, make_reference_nic
from ..hw.smartnic import SMARTNIC_ARCHETYPES
from ..apps.kvs.lake import sample_latency
from ..sim import Simulator, percentile
from ..steady import dns_models, find_crossover, kvs_models, paxos_models
from ..steady.paxos import PaxosRole
from ..units import kpps, mpps
from .reporting import format_table
from .sweep import SweepPoint, linspace_rates, sweep_models

# ---------------------------------------------------------------------------
# Figure 3: power vs throughput for the three applications.
# ---------------------------------------------------------------------------


@dataclass
class PowerSweepResult:
    """One Figure-3 panel: named curves + the software/hardware crossover."""

    title: str
    series: Dict[str, List[SweepPoint]]
    crossover_pps: Optional[float]
    paper_crossover_pps: float

    def render(self) -> str:
        headers = ["offered_kpps"] + [f"{name} [W]" for name in self.series]
        rates = [p.offered_pps for p in next(iter(self.series.values()))]
        rows = []
        for i, rate in enumerate(rates):
            rows.append(
                [rate / 1e3] + [pts[i].power_w for pts in self.series.values()]
            )
        lines = [self.title, format_table(headers, rows)]
        if self.crossover_pps is not None:
            lines.append(
                f"crossover: {self.crossover_pps / 1e3:.0f} Kpps "
                f"(paper: ~{self.paper_crossover_pps / 1e3:.0f} Kpps)"
            )
        return "\n".join(lines)


def figure3a(nic: Nic = NIC_MELLANOX_CX311A, steps: int = 21) -> PowerSweepResult:
    """Figure 3(a): KVS power vs throughput (crossover ≈ 80 Kpps)."""
    models = kvs_models(nic=nic)
    rates = linspace_rates(mpps(2.0), steps)
    return PowerSweepResult(
        title=f"Figure 3(a): KVS power vs throughput ({nic.name})",
        series=sweep_models(models, rates),
        crossover_pps=find_crossover(models["memcached"], models["lake"]),
        paper_crossover_pps=kpps(80)
        if nic is NIC_MELLANOX_CX311A
        else kpps(300),
    )


def figure3b(role: PaxosRole = PaxosRole.ACCEPTOR, steps: int = 21) -> PowerSweepResult:
    """Figure 3(b): Paxos power vs throughput (crossover ≈ 150 Kpps)."""
    models = paxos_models(role)
    rates = linspace_rates(mpps(1.0), steps)
    return PowerSweepResult(
        title=f"Figure 3(b): Paxos {role.value} power vs throughput",
        series=sweep_models(models, rates),
        crossover_pps=find_crossover(models["libpaxos"], models["p4xos"]),
        paper_crossover_pps=kpps(150),
    )


def figure3c(steps: int = 21) -> PowerSweepResult:
    """Figure 3(c): DNS power vs throughput (crossover < 200 Kpps)."""
    models = dns_models()
    rates = linspace_rates(mpps(1.0), steps)
    return PowerSweepResult(
        title="Figure 3(c): DNS power vs throughput",
        series=sweep_models(models, rates),
        crossover_pps=find_crossover(models["nsd"], models["emu"]),
        paper_crossover_pps=kpps(150),
    )


# ---------------------------------------------------------------------------
# Figure 4: LaKe design trade-offs.
# ---------------------------------------------------------------------------


@dataclass
class Figure4Result:
    """The Figure 4 bar set (standalone-card watts)."""

    bars: List[Tuple[str, float]]

    def render(self) -> str:
        table = format_table(["configuration", "power [W]"], self.bars)
        checks = [
            f"memories total: {cal.MEMORIES_TOTAL_W:.1f}W (paper: 'no less than 10W')",
            f"memory reset saving: {cal.MEMORY_RESET_SAVING_FRACTION:.0%} (paper: 40%)",
            f"clock gating saving: {cal.CLOCK_GATING_SAVING_W:.1f}W (paper: <1W)",
            f"per-PE power: {cal.LAKE_PE_W:.2f}W (paper: ~0.25W)",
        ]
        return "Figure 4: LaKe design trade-offs\n" + table + "\n" + "\n".join(checks)

    def bar(self, name: str) -> float:
        for bar_name, value in self.bars:
            if bar_name == name:
                return value
        raise KeyError(name)


def figure4() -> Figure4Result:
    """Reproduce Figure 4's nine bars with the §5.1 gating semantics."""
    mode = PlatformMode.STANDALONE
    bars: List[Tuple[str, float]] = []

    bars.append(("Ref. NIC", make_reference_nic(mode).power_w()))

    card = make_lake_fpga(pe_count=1, with_external_memories=False, mode=mode)
    bars.append(("1 PE & no mem", card.power_w()))

    card = make_lake_fpga(with_external_memories=False, mode=mode)
    bars.append(("No mem", card.power_w()))

    card = make_lake_fpga(with_external_memories=False, mode=mode)
    card.set_utilization(1.0)
    bars.append(("Max load & no mem", card.power_w()))

    card = make_lake_fpga(mode=mode)
    card.reset_memories()
    card.clock_gate_all_logic()
    bars.append(("Reset mem & clk gating", card.power_w()))

    card = make_lake_fpga(mode=mode)
    card.reset_memories()
    bars.append(("Reset mem", card.power_w()))

    bars.append(("Server no cards", cal.I7_IDLE_NO_NIC_W))

    card = make_lake_fpga(mode=mode)
    card.clock_gate_all_logic()
    bars.append(("Clk gating", card.power_w()))

    bars.append(("LaKe", make_lake_fpga(mode=mode).power_w()))
    return Figure4Result(bars=bars)


# ---------------------------------------------------------------------------
# Figure 5: on-demand power.
# ---------------------------------------------------------------------------


@dataclass
class Figure5Result:
    series: Dict[str, List[SweepPoint]]
    savings_at_peak: Dict[str, float]

    def render(self) -> str:
        headers = ["offered_kpps"] + list(self.series)
        rates = [p.offered_pps for p in next(iter(self.series.values()))]
        rows = [
            [rate / 1e3] + [pts[i].power_w for pts in self.series.values()]
            for i, rate in enumerate(rates)
        ]
        lines = ["Figure 5: in-network computing on demand", format_table(headers, rows)]
        for app, saving in self.savings_at_peak.items():
            lines.append(f"{app}: on-demand saves {saving:.0%} vs software at high load")
        return "\n".join(lines)


def figure5(steps: int = 25) -> Figure5Result:
    """Figure 5: on-demand vs software-only power for the three apps.

    The sweep itself is a declarative :class:`OnDemandSweepSpec` executed
    by the scenario layer; this runner only shapes the result.
    """
    from ..scenarios import OnDemandSweepSpec, run_ondemand_sweep

    sweep = run_ondemand_sweep(OnDemandSweepSpec(steps=steps))
    return Figure5Result(
        series=sweep.series, savings_at_peak=sweep.savings_at_peak
    )


# ---------------------------------------------------------------------------
# §5.3: memories and latency.
# ---------------------------------------------------------------------------


@dataclass
class Section5Result:
    rows: List[Tuple]
    latency_rows: List[Tuple]

    def render(self) -> str:
        memory_table = format_table(
            ["memory", "power [W]", "capacity [entries]", "vs on-chip"], self.rows
        )
        latency_table = format_table(
            ["path", "median [us]", "p99 [us]", "paper median", "paper p99"],
            self.latency_rows,
        )
        return (
            "Section 5.3: memory power/capacity\n"
            + memory_table
            + "\nLaKe access latency\n"
            + latency_table
        )


def section5_memories(samples: int = 20_000, seed: int = 5) -> Section5Result:
    """§5.3's memory table + measured LaKe latency distributions."""
    import random

    rows = [
        ("DRAM 4GB", cal.DRAM_4GB_W, cal.DRAM_VALUE_ENTRIES, "x65k values"),
        ("SRAM 18MB", cal.SRAM_18MB_W, cal.SRAM_FREELIST_ENTRIES, "x32k freelist"),
        ("BRAM (on-chip)", 0.0, cal.ONCHIP_VALUE_ENTRIES, "1x"),
    ]
    rng = random.Random(seed)
    l2 = sorted(
        sample_latency(rng, cal.LAKE_L2_HIT_MEDIAN_US, cal.LAKE_L2_HIT_P99_LOW_LOAD_US)
        for _ in range(samples)
    )
    miss = sorted(
        sample_latency(rng, cal.LAKE_MISS_MEDIAN_US, cal.LAKE_MISS_P99_US)
        for _ in range(samples)
    )
    latency_rows = [
        ("L1 hit (on-chip)", cal.LAKE_L1_HIT_US, cal.LAKE_L1_HIT_US + 0.1, 1.4, 1.4),
        (
            "L2 hit (DRAM)",
            percentile(l2, 50.0),
            percentile(l2, 99.0),
            cal.LAKE_L2_HIT_MEDIAN_US,
            cal.LAKE_L2_HIT_P99_LOW_LOAD_US,
        ),
        (
            "miss (software)",
            percentile(miss, 50.0),
            percentile(miss, 99.0),
            cal.LAKE_MISS_MEDIAN_US,
            cal.LAKE_MISS_P99_US,
        ),
    ]
    return Section5Result(rows=rows, latency_rows=latency_rows)


# ---------------------------------------------------------------------------
# §6: the ASIC.
# ---------------------------------------------------------------------------


@dataclass
class Section6Result:
    normalized_power: List[Tuple[float, float, float, float]]
    p4xos_overhead_full_load: float
    diag_overhead_full_load: float
    power_span_fraction: float
    ops_per_watt: Dict[str, float]
    dynamic_ratio_vs_server: float

    def render(self) -> str:
        table = format_table(
            ["utilization", "L2 only", "L2+P4xos", "diag.p4"],
            self.normalized_power,
        )
        lines = [
            "Section 6: Tofino normalized power",
            table,
            f"P4xos overhead at full load: {self.p4xos_overhead_full_load:.1%} "
            "(paper: <=2%)",
            f"diag.p4 overhead at full load: {self.diag_overhead_full_load:.1%} "
            "(paper: 4.8%)",
            f"min<->max power span: {self.power_span_fraction:.1%} (paper: <20%)",
            f"Tofino dynamic power @10% util vs server dynamic @180Kpps: "
            f"{self.dynamic_ratio_vs_server:.2f} (paper: ~1/3)",
            "ops per watt: "
            + ", ".join(f"{k}={v:,.0f}" for k, v in self.ops_per_watt.items()),
        ]
        return "\n".join(lines)


def section6_asic(steps: int = 11) -> Section6Result:
    """§6: Tofino power behaviour and the ops/W comparison."""
    l2 = TofinoSwitch(TofinoProgram.L2_FORWARDING)
    p4xos = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    diag = TofinoSwitch(TofinoProgram.DIAG)
    rows = []
    for i in range(steps):
        u = i / (steps - 1)
        rows.append(
            (
                u,
                l2.power_normalized(u),
                p4xos.power_normalized(u),
                diag.power_normalized(u),
            )
        )
    p4_over = p4xos.power_normalized(1.0) / l2.power_normalized(1.0) - 1.0
    diag_over = diag.power_normalized(1.0) / l2.power_normalized(1.0) - 1.0
    span = p4xos.power_normalized(1.0) / p4xos.power_normalized(0.0) - 1.0

    # ops/W: software (libpaxos at capacity, dynamic power), FPGA
    # (standalone P4xos), ASIC (Tofino P4xos at full rate, total power).
    models = paxos_models(PaxosRole.ACCEPTOR)
    sw = models["libpaxos"]
    sw_ops = sw.capacity_pps / sw.dynamic_power_w(sw.capacity_pps)
    fpga = models["p4xos-standalone"]
    fpga_ops = fpga.capacity_pps / fpga.power_at(fpga.capacity_pps)
    asic_ops = p4xos.ops_per_watt(1.0)

    server_dynamic = sw.dynamic_power_w(kpps(180))
    ratio = p4xos.dynamic_power_w(cal.TOFINO_X1000_UTILIZATION) / server_dynamic
    return Section6Result(
        normalized_power=rows,
        p4xos_overhead_full_load=p4_over,
        diag_overhead_full_load=diag_over,
        power_span_fraction=span,
        ops_per_watt={"software": sw_ops, "fpga": fpga_ops, "asic": asic_ops},
        dynamic_ratio_vs_server=ratio,
    )


# ---------------------------------------------------------------------------
# §7: the Xeon server ("released dataset" breakdown).
# ---------------------------------------------------------------------------


@dataclass
class Section7Result:
    rows: List[Tuple]

    def render(self) -> str:
        return "Section 7: Xeon E5-2660 v4 RAPL characterization\n" + format_table(
            ["load", "total [W]", "socket0 [W]", "socket1 [W]", "paper [W]"],
            self.rows,
        )

    def total(self, label: str) -> float:
        for row in self.rows:
            if row[0] == label:
                return row[1]
        raise KeyError(label)


def section7_server() -> Section7Result:
    """§7: the synthetic no-I/O CPU load ladder on the dual-Xeon box."""
    sim = Simulator()
    server = make_xeon_2660_server(sim)
    ladder = [
        ("idle", 0, 0.0, cal.XEON_2660_IDLE_W),
        ("1 core @10%", 1, 0.10, cal.XEON_2660_ONE_CORE_10PCT_W),
        ("1 core @100%", 1, 1.0, cal.XEON_2660_ONE_CORE_W),
        ("2 cores @100%", 2, 1.0, None),
        ("14 cores @100%", 14, 1.0, None),
        ("28 cores @100%", 28, 1.0, cal.XEON_2660_FULL_LOAD_W),
    ]
    rows = []
    for label, cores, util, paper in ladder:
        server.cpu.clear_load("bench")
        if cores:
            server.cpu.set_load("bench", cores, util)
        rows.append(
            (
                label,
                server.platform_power_w(),
                server.socket_power_w(0),
                server.socket_power_w(1),
                paper if paper is not None else "-",
            )
        )
    return Section7Result(rows=rows)


# ---------------------------------------------------------------------------
# §8 / §9.4: tipping points.
# ---------------------------------------------------------------------------


@dataclass
class Section8Result:
    tipping_points: List[TippingPointAnalysis]
    tor: TorSwitchAnalysis

    def render(self) -> str:
        rows = [
            (
                t.software,
                t.hardware,
                (t.crossover_pps / 1e3) if t.crossover_pps is not None else "never",
                t.software_idle_w,
                t.hardware_idle_w,
            )
            for t in self.tipping_points
        ]
        table = format_table(
            ["software", "hardware", "crossover [kpps]", "SW idle [W]", "HW idle [W]"],
            rows,
        )
        tor_line = (
            f"ToR switch: crossover at {self.tor.crossover_pps:.0f} pps "
            f"({'~zero, switch always wins' if self.tor.switch_always_wins else 'nonzero'}; "
            f"paper: 'R is almost zero')"
        )
        return "Section 8: when to use in-network computing\n" + table + "\n" + tor_line


def section8_tipping() -> Section8Result:
    """§8's two questions + §9.4's ToR-switch analysis."""
    kvs = kvs_models()
    paxos = paxos_models(PaxosRole.ACCEPTOR)
    dns = dns_models()
    tps = [
        tipping_point(kvs["memcached"], kvs["lake"]),
        tipping_point(paxos["libpaxos"], paxos["p4xos"]),
        tipping_point(dns["nsd"], dns["emu"]),
    ]
    return Section8Result(
        tipping_points=tps, tor=tor_switch_analysis(kvs["memcached"])
    )


# ---------------------------------------------------------------------------
# §9.3: real workloads.
# ---------------------------------------------------------------------------


@dataclass
class Section93Result:
    dynamo_rows: List[Tuple]
    google_rows: List[Tuple]

    def render(self) -> str:
        dynamo = format_table(
            ["workload", "window [s]", "median", "p99", "paper median", "paper p99"],
            self.dynamo_rows,
        )
        google = format_table(["metric", "synthesized", "paper"], self.google_rows)
        return (
            "Section 9.3: Dynamo power variation\n"
            + dynamo
            + "\nGoogle cluster trace analysis\n"
            + google
        )


def section93_traces(trace_seconds: int = 2_000, seed: int = 13) -> Section93Result:
    """§9.3: synthesize both traces and run the paper's analyses."""
    from ..workloads.dynamo import DynamoTraceSynthesizer, analyze_power_variation
    from ..workloads.google_trace import (
        GoogleTraceSynthesizer,
        analyze_offload_candidates,
    )

    dynamo_rows = []
    for cls in ("rack", "caching", "web"):
        synth = DynamoTraceSynthesizer(cls, seed=seed)
        trace = synth.generate(trace_seconds)
        targets = synth.paper_statistics()
        analysis = analyze_power_variation(trace, targets["window_s"])
        dynamo_rows.append(
            (
                cls,
                targets["window_s"],
                analysis.median,
                analysis.p99,
                targets["median"],
                targets["p99"],
            )
        )

    tasks = GoogleTraceSynthesizer(seed=seed).generate()
    google = analyze_offload_candidates(tasks)
    google_rows = [
        ("tasks", google.total_tasks, "-"),
        ("offload candidates", google.offload_candidates, "1.39M (full trace)"),
        (
            "long-job count fraction",
            google.long_job_count_fraction,
            cal.GOOGLE_LONG_JOB_COUNT_FRACTION,
        ),
        (
            "long-job utilization fraction",
            google.long_job_util_fraction,
            cal.GOOGLE_LONG_JOB_UTIL_FRACTION,
        ),
        (
            "candidate cores per node",
            google.avg_candidate_cores_per_node,
            cal.GOOGLE_AVG_CANDIDATE_CORES_PER_NODE,
        ),
    ]
    return Section93Result(dynamo_rows=dynamo_rows, google_rows=google_rows)


# ---------------------------------------------------------------------------
# §10: FPGA, SmartNIC or switch?
# ---------------------------------------------------------------------------


@dataclass
class Section10Result:
    smartnic_rows: List[Tuple]
    recommendations: Dict[str, List[Tuple[str, float]]]

    def render(self) -> str:
        nic_table = format_table(
            ["smartnic", "idle [W]", "peak [W]", "Mpps/W", "peak Mpps"],
            self.smartnic_rows,
        )
        lines = ["Section 10: platform comparison", nic_table]
        for profile, ranked in self.recommendations.items():
            ranking = ", ".join(f"{p} ({s:.1f})" for p, s in ranked[:3])
            lines.append(f"{profile}: {ranking}")
        return "\n".join(lines)


def section10_platforms() -> Section10Result:
    """§10: the SmartNIC envelope + advisor rankings for three profiles."""
    smartnic_rows = [
        (
            nic.name,
            nic.idle_w,
            nic.peak_w,
            nic.mpps_per_w,
            nic.peak_pps() / 1e6,
        )
        for nic in SMARTNIC_ARCHETYPES.values()
    ]
    advisor = PlacementAdvisor()
    profiles = {
        "KVS cache @ 5Mpps": ApplicationProfile(
            "kvs", peak_rate_pps=mpps(5.0), latency_sensitive=True,
            state_bytes=1 << 30,
        ),
        "Paxos @ 100Mpps": ApplicationProfile(
            "paxos", peak_rate_pps=mpps(100.0), latency_sensitive=True,
            state_bytes=1 << 20,
        ),
        "DNS @ 50Kpps": ApplicationProfile(
            "dns", peak_rate_pps=kpps(50.0), state_bytes=1 << 20,
        ),
    }
    recs = {
        label: [(r.platform, r.score) for r in advisor.recommend(profile)]
        for label, profile in profiles.items()
    }
    return Section10Result(smartnic_rows=smartnic_rows, recommendations=recs)
