"""Unit conventions and conversion helpers.

Conventions used throughout the package:

* **time**: microseconds (``float``) inside the discrete-event simulator;
  seconds for steady-state/analytic interfaces.  Helpers below convert.
* **rate**: packets (queries, messages) per second, as a plain float.
  ``kpps``/``mpps`` helpers make call sites read like the paper's figures.
* **power**: watts.
* **energy**: joules.

Keeping conversions in one module avoids the classic systems-code bug of
mixing milli/micro factors across modules.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------

USEC = 1.0
MSEC = 1_000.0
SEC = 1_000_000.0


def usec(value: float) -> float:
    """Microseconds expressed in simulator time units (identity)."""
    return value * USEC


def msec(value: float) -> float:
    """Milliseconds expressed in simulator time units (microseconds)."""
    return value * MSEC


def sec(value: float) -> float:
    """Seconds expressed in simulator time units (microseconds)."""
    return value * SEC


def to_seconds(time_us: float) -> float:
    """Convert simulator time (microseconds) to seconds."""
    return time_us / SEC


def to_msec(time_us: float) -> float:
    """Convert simulator time (microseconds) to milliseconds."""
    return time_us / MSEC


# ---------------------------------------------------------------------------
# Rates.
# ---------------------------------------------------------------------------


def kpps(value: float) -> float:
    """Kilopackets-per-second expressed in packets/second."""
    return value * 1_000.0


def mpps(value: float) -> float:
    """Megapackets-per-second expressed in packets/second."""
    return value * 1_000_000.0


def to_kpps(rate_pps: float) -> float:
    """Convert packets/second to Kpps (as plotted on the paper's x axes)."""
    return rate_pps / 1_000.0


def interarrival_us(rate_pps: float) -> float:
    """Mean interarrival time in microseconds for a given rate.

    Raises ``ZeroDivisionError`` semantics explicitly for rate 0, which has
    no finite interarrival time.
    """
    if rate_pps <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_pps!r}")
    return SEC / rate_pps


# ---------------------------------------------------------------------------
# Data sizes.
# ---------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def gbit_per_s(value: float) -> float:
    """Gigabits/second expressed in bits/second."""
    return value * 1e9


def line_rate_pps(link_bps: float, frame_bytes: int) -> float:
    """Packets/second achievable on a link for a given frame size.

    Includes the Ethernet per-frame overhead (preamble 8B + IFG 12B) that a
    10GE device pays on the wire; this is why 10GE small-packet line rate is
    ~14.88 Mpps at 64B and ~13 Mpps at the ~70B memcached query size the
    paper quotes for LaKe.
    """
    if frame_bytes <= 0:
        raise ValueError(f"frame_bytes must be positive, got {frame_bytes!r}")
    wire_bytes = frame_bytes + 8 + 12
    return link_bps / (wire_bytes * 8)
