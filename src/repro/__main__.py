"""Command-line entry point: regenerate any paper figure/table, or run a
named cluster scenario from the registry.

Usage::

    python -m repro --list
    python -m repro figure3a
    python -m repro figure7 --duration 5
    python -m repro figure6 --png out/
    python -m repro rack-mixed --duration 5
    python -m repro --sweep sweep-rack-kvs
    python -m repro all
"""

from __future__ import annotations

import argparse
import ast
import difflib
import pathlib
import sys

from .errors import ConfigurationError
from .experiments import figures, run_figure6, run_figure7
from .hw.device import device_descriptions
from .scenarios import (
    closest_scenario,
    closest_sweep,
    run_replicated,
    run_scenario,
    run_sweep,
    scenario_descriptions,
    scenario_names,
    sweep_descriptions,
)
from .scenarios.registry import closest_name


def _analytic(runner):
    return lambda args: runner().render()


def _scenario(name):
    def run(args):
        overrides = {}
        if args.duration is not None:
            overrides["duration_s"] = args.duration
        return run_scenario(name, **overrides).render()

    return run


def _figure6(args):
    result = run_figure6(duration_s=args.duration or 10.0)
    _maybe_png(args, "figure6", result)
    return result.render()


def _figure7(args):
    result = run_figure7(duration_s=args.duration or 5.0)
    _maybe_png(args, "figure7", result)
    return result.render()


def _maybe_png(args, name: str, result) -> None:
    if not getattr(args, "png", None):
        return
    from .experiments.plots import matplotlib_available

    if not matplotlib_available():
        print(f"[{name}] matplotlib not importable; skipping PNG", file=sys.stderr)
        return
    out = pathlib.Path(args.png)
    out.mkdir(parents=True, exist_ok=True)
    path = result.save_png(out / f"{name}.png")
    print(f"[{name}] wrote {path}", file=sys.stderr)


_EXPERIMENTS = {
    "figure3a": _analytic(figures.figure3a),
    "figure3b": _analytic(figures.figure3b),
    "figure3c": _analytic(figures.figure3c),
    "figure4": _analytic(figures.figure4),
    "figure5": _analytic(figures.figure5),
    "figure6": _figure6,
    "figure7": _figure7,
    "section5": _analytic(figures.section5_memories),
    "section6": _analytic(figures.section6_asic),
    "section7": _analytic(figures.section7_server),
    "section8": _analytic(figures.section8_tipping),
    "section9.3": _analytic(figures.section93_traces),
    "section10": _analytic(figures.section10_platforms),
}

#: Named cluster scenarios (the rack-scale compositions) are exposed
#: alongside the figures; ``all`` runs only the figure catalogue.
_SCENARIOS = {name: _scenario(name) for name in scenario_names()}


def _render_catalogue() -> str:
    lines = ["experiments:"]
    lines.extend(f"  {name}" for name in sorted(_EXPERIMENTS))
    lines.append("scenarios:")
    descriptions = scenario_descriptions()
    width = max(len(name) for name in descriptions)
    lines.extend(
        f"  {name:<{width}}  {descriptions[name]}"
        for name in sorted(descriptions)
    )
    lines.append("sweeps (run with --sweep):")
    sweeps = sweep_descriptions()
    if sweeps:
        from .scenarios import sweep_fastpath_eligibility

        # eligible → the whole grid has analytic steady-state answers
        # (--search adaptive and fastpath work); DES-only → every point
        # replays the event simulation
        tags = {
            name: f"[{sweep_fastpath_eligibility(name)}]" for name in sweeps
        }
        width = max(len(name) for name in sweeps)
        tag_width = max(len(tag) for tag in tags.values())
        lines.extend(
            f"  {name:<{width}}  {tags[name]:<{tag_width}}  {sweeps[name]}"
            for name in sorted(sweeps)
        )
    fabrics = _fabric_topologies()
    if fabrics:
        lines.append("fabric topologies (multi-rack scenarios):")
        width = max(len(name) for name in fabrics)
        lines.extend(
            f"  {name:<{width}}  {fabrics[name]}" for name in sorted(fabrics)
        )
    lines.append("offload devices (DeviceSpec kinds):")
    devices = device_descriptions()
    width = max(len(name) for name in devices)
    lines.extend(
        f"  {name:<{width}}  {devices[name]}" for name in sorted(devices)
    )
    return "\n".join(lines)


def _fabric_topologies() -> dict:
    """name -> one-line leaf-spine shape summary for every catalogue
    scenario declaring a :class:`FabricSpec` (spec factories are cheap;
    nothing is simulated here)."""
    from .scenarios import build_spec

    rows = {}
    for name in scenario_names():
        spec = build_spec(name)
        fabric = spec.fabric
        if fabric is None:
            continue
        n_hosts = (
            len(spec.kvs_hosts)
            + len(spec.dns_hosts)
            + sum(len(set(px.acceptor_hosts or ())) for px in spec.paxos_groups)
        )
        uplink = fabric.uplink
        rows[name] = (
            f"{fabric.racks} racks x 1 ToR + spine {fabric.spine.name!r}, "
            f"{n_hosts} server host(s), uplinks {uplink.bandwidth_gbps:g} Gb/s "
            f"/ {uplink.oversubscription:g}:1 oversubscribed"
        )
    return rows


def _resolve_case_insensitive(name: str) -> str:
    """Map ``Rack-Mixed``-style spellings onto the canonical catalogue name."""
    lowered = {c.lower(): c for c in (*_EXPERIMENTS, *_SCENARIOS, "all", "list")}
    return lowered.get(name.lower(), name)


def _suggestion(name: str) -> str:
    experiment = closest_name(name, sorted(_EXPERIMENTS) + ["all", "list"])
    scenario = closest_scenario(name)
    best = experiment or scenario
    if scenario and experiment:
        # prefer whichever is more similar
        best = max(
            (experiment, scenario),
            key=lambda c: difflib.SequenceMatcher(None, name.lower(), c).ratio(),
        )
    return f"; did you mean {best!r}?" if best else ""


def _parse_anchor(text: str) -> dict:
    """``--anchor "axis=value[,axis2=value2]"`` → a params mapping;
    values parse as python literals, falling back to the raw string."""
    anchor = {}
    for part in text.split(","):
        key, sep, raw = part.partition("=")
        if not sep or not key.strip():
            raise ConfigurationError(
                f"anchor {text!r} must be comma-separated axis=value pairs"
            )
        try:
            value = ast.literal_eval(raw.strip())
        except (ValueError, SyntaxError):
            value = raw.strip()
        anchor[key.strip()] = value
    return anchor


def _print_perf_stats(result) -> None:
    """The ``--perf-stats`` diagnostics block (stderr, after the tables)."""
    from .scenarios import executor_stats, spec_cache_stats

    runs = result.runs if hasattr(result, "runs") else [result]
    total = sum(run.grid_points_total for run in runs)
    des = sum(
        run.des_points_run
        if run.des_points_run is not None
        else run.grid_points_total
        for run in runs
    )
    cache = spec_cache_stats()
    pool = executor_stats()
    lines = [
        "perf stats:",
        f"  grid points: {total} total, {des} DES-replayed, "
        f"{total - des} answered by the analytic grid kernel",
        f"  spec cache: {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['size']} cached",
        f"  executor: {pool['pool_creates']} pool created, "
        f"{pool['pool_reuses']} warm reuses, "
        f"{pool['tasks_dispatched']} tasks dispatched",
    ]
    print("\n".join(lines), file=sys.stderr)


def _run_sweep_command(args) -> int:
    name = args.sweep
    overrides = {}
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    try:
        anchors = [_parse_anchor(text) for text in (args.anchor or [])]
        # run_sweep resolves exact case-insensitive spellings itself;
        # unknown names and rejected overrides raise with the full message
        if args.seeds is not None and args.seeds != 1:
            if anchors:
                raise ConfigurationError(
                    "--anchor applies to single adaptive runs; replicated "
                    "sweeps re-validate every seed's bracket already"
                )
            replicated = run_replicated(
                name,
                seeds=args.seeds,
                workers=args.workers,
                search=args.search,
                **overrides,
            )
            print(replicated.render())
            if args.perf_stats:
                _print_perf_stats(replicated)
            return 0
        result = run_sweep(
            name,
            workers=args.workers,
            search=args.search,
            anchors=anchors,
            **overrides,
        )
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(result.render())
    if args.perf_stats:
        _print_perf_stats(result)
    _maybe_png(args, result.spec.name, result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and tables, or run a "
        "named cluster scenario.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="which experiment or scenario to run ('list' or --list prints "
        "the catalogue; 'all' runs every figure/table)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment and scenario catalogue with descriptions",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds for the DES experiments and scenarios",
    )
    parser.add_argument(
        "--png",
        metavar="DIR",
        default=None,
        help="also write matplotlib PNGs for figure6/figure7/sweeps into DIR "
        "(skipped when matplotlib is not importable)",
    )
    parser.add_argument(
        "--sweep",
        metavar="NAME",
        default=None,
        help="run a named scenario sweep (§9.4 tipping points) and print "
        "its per-point and tipping-point tables",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run --sweep grid points on N worker processes (results are "
        "identical to the serial default; only the wall clock changes)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="K",
        help="replicate --sweep over K seeds and print mean ± 95%% CI "
        "tables (K tasks per grid point share the --workers pool; "
        "seed 1 of K is the sweep's own seed)",
    )
    parser.add_argument(
        "--search",
        choices=("exhaustive", "adaptive"),
        default="exhaustive",
        help="how --sweep walks its grid: 'exhaustive' replays every "
        "point; 'adaptive' brackets each crossover on the vectorized "
        "analytic grid and replays the DES only at the bracketing points",
    )
    parser.add_argument(
        "--anchor",
        action="append",
        metavar="AXIS=VALUE[,AXIS=VALUE]",
        default=None,
        help="with --search adaptive: grid points matching these axis "
        "values always replay the DES (repeatable)",
    )
    parser.add_argument(
        "--perf-stats",
        action="store_true",
        help="after the tables, print spec-cache, executor-pool, and "
        "grid-kernel vs DES point counters to stderr",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sweep is not None:
        if args.experiment is not None or args.list:
            print(
                "--sweep is mutually exclusive with --list and positional "
                "experiments; run them as separate invocations",
                file=sys.stderr,
            )
            return 2
        return _run_sweep_command(args)
    if args.list or args.experiment in (None, "list"):
        if args.experiment is None and not args.list:
            parser.print_usage(sys.stderr)
            return 2
        print(_render_catalogue())
        return 0
    args.experiment = _resolve_case_insensitive(args.experiment)
    if args.experiment == "list":
        print(_render_catalogue())
        return 0
    if (
        args.experiment != "all"
        and args.experiment not in _EXPERIMENTS
        and args.experiment not in _SCENARIOS
    ):
        sweep = closest_sweep(args.experiment)
        if sweep is not None and sweep.lower() == args.experiment.lower():
            # a sweep name given positionally: point at the right flag
            print(
                f"{args.experiment!r} is a sweep; run it with: "
                f"python -m repro --sweep {sweep}",
                file=sys.stderr,
            )
            return 2
        print(
            f"unknown experiment or scenario {args.experiment!r}"
            f"{_suggestion(args.experiment)}",
            file=sys.stderr,
        )
        return 2
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = _EXPERIMENTS.get(name) or _SCENARIOS[name]
        print(runner(args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
