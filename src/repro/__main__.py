"""Command-line entry point: regenerate any paper figure/table, or run a
named cluster scenario from the registry.

Usage::

    python -m repro list
    python -m repro figure3a
    python -m repro figure7 --duration 5
    python -m repro rack8-kvs-sharded --duration 8
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys

from .experiments import figures, run_figure6, run_figure7
from .scenarios import run_scenario, scenario_names


def _analytic(runner):
    return lambda args: runner().render()


def _scenario(name):
    def run(args):
        overrides = {}
        if args.duration is not None:
            overrides["duration_s"] = args.duration
        return run_scenario(name, **overrides).render()

    return run


_EXPERIMENTS = {
    "figure3a": _analytic(figures.figure3a),
    "figure3b": _analytic(figures.figure3b),
    "figure3c": _analytic(figures.figure3c),
    "figure4": _analytic(figures.figure4),
    "figure5": _analytic(figures.figure5),
    "figure6": lambda args: run_figure6(duration_s=args.duration or 10.0).render(),
    "figure7": lambda args: run_figure7(duration_s=args.duration or 5.0).render(),
    "section5": _analytic(figures.section5_memories),
    "section6": _analytic(figures.section6_asic),
    "section7": _analytic(figures.section7_server),
    "section8": _analytic(figures.section8_tipping),
    "section9.3": _analytic(figures.section93_traces),
    "section10": _analytic(figures.section10_platforms),
}

#: Named cluster scenarios (the rack-scale compositions) are exposed
#: alongside the figures; ``all`` runs only the figure catalogue.
_SCENARIOS = {name: _scenario(name) for name in scenario_names()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + sorted(_SCENARIOS) + ["all", "list"],
        help="which experiment or scenario to run ('list' prints the catalogue)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds for the DES experiments and scenarios",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        for name in sorted(_SCENARIOS):
            print(f"{name} (scenario)")
        return 0
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = _EXPERIMENTS.get(name) or _SCENARIOS[name]
        print(runner(args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
