"""Shared name resolution for the package's registries.

The scenario, sweep and offload-device registries all resolve user-given
names the same way: an exact case-insensitive spelling hits directly, and
anything else gets a fuzzy did-you-mean suggestion.  One implementation
lives here so the cutoff and matching behaviour cannot drift between
registries.
"""

from __future__ import annotations

import difflib
from typing import List, Optional


def closest_name(name: str, candidates: List[str]) -> Optional[str]:
    """The candidate most similar to ``name``, matched case-insensitively.

    An exact case-insensitive hit (``Rack-Mixed``, ``NETFPGA-SUME``) is
    returned directly; otherwise fuzzy matching compares lowercased names
    so casing never hides a typo's nearest neighbour.
    """
    lowered = {c.lower(): c for c in candidates}
    exact = lowered.get(name.lower())
    if exact is not None:
        return exact
    matches = difflib.get_close_matches(
        name.lower(), list(lowered), n=1, cutoff=0.4
    )
    return lowered[matches[0]] if matches else None
