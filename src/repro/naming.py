"""Shared name resolution for the package's registries.

The scenario, sweep and offload-device registries all resolve user-given
names the same way: an exact case-insensitive spelling hits directly, and
anything else gets a fuzzy did-you-mean suggestion.  One implementation
lives here so the cutoff and matching behaviour cannot drift between
registries.

Rack-qualified node names also live here: a multi-rack fabric reuses host
names across racks (every rack has an ``h0``), so builder-facing names are
namespaced ``<rack>/<name>``.  Routing every builder node name through
:func:`rack_qualified` is what lets two racks reuse ``h0`` without
``Topology.add`` raising ``duplicate node name`` — and because
``RngStreams`` keys streams by these fully-qualified names, per-rack
latency/arrival streams stay independent for free.
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Tuple

#: Separator between a rack name and a node name in fully-qualified names.
RACK_SEPARATOR = "/"


def rack_qualified(rack: Optional[str], name: str) -> str:
    """``<rack>/<name>``, or ``name`` unchanged when ``rack`` is None.

    The None passthrough is what keeps the single-ToR scenario path
    byte-identical: without a fabric no name (and therefore no RNG stream
    key) changes spelling.  Already-qualified names pass through untouched
    so explicit placements like ``rack1/acc0`` are stable under
    re-qualification.
    """
    if rack is None or RACK_SEPARATOR in name:
        return name
    return f"{rack}{RACK_SEPARATOR}{name}"


def split_rack(name: str) -> Tuple[Optional[str], str]:
    """Invert :func:`rack_qualified`: ``(rack | None, bare_name)``."""
    rack, sep, bare = name.partition(RACK_SEPARATOR)
    if not sep:
        return None, name
    return rack, bare


def closest_name(name: str, candidates: List[str]) -> Optional[str]:
    """The candidate most similar to ``name``, matched case-insensitively.

    An exact case-insensitive hit (``Rack-Mixed``, ``NETFPGA-SUME``) is
    returned directly; otherwise fuzzy matching compares lowercased names
    so casing never hides a typo's nearest neighbour.
    """
    lowered = {c.lower(): c for c in candidates}
    exact = lowered.get(name.lower())
    if exact is not None:
        return exact
    matches = difflib.get_close_matches(
        name.lower(), list(lowered), n=1, cutoff=0.4
    )
    return lowered[matches[0]] if matches else None
