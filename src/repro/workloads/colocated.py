"""Co-located CPU workloads.

Figure 6 runs "ChainerMN (Chainer v4.4.0), a deep learning framework …
as a second workload on the host, passing traffic through the same LaKe
card.  CPU power consumption is read from RAPL, and is increased due to
ChainerMN."  The co-located job matters to the host controller because it
inflates RAPL power: "Monitoring the power consumption alone is not
sufficient, as a high power consumption can be triggered by multiple
applications running on the same host" (§9.1).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..sim import Simulator


class ChainerMNWorkload:
    """A CPU-burning co-located job registered on a server's CPU account."""

    def __init__(
        self,
        sim: Simulator,
        server,
        cores: float = 2.0,
        utilization: float = 0.95,
        app_name: str = "chainermn",
    ):
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        self.sim = sim
        self.server = server
        self.cores = cores
        self.utilization = utilization
        self.app_name = app_name
        self.running = False
        self.started_at_us: Optional[float] = None
        self.stopped_at_us: Optional[float] = None

    def start(self) -> None:
        """Begin training: the cores go busy."""
        if self.running:
            return
        self.server.cpu.set_load(self.app_name, self.cores, self.utilization)
        self.running = True
        self.started_at_us = self.sim.now

    def stop(self) -> None:
        """Training ends (the second Figure 6 transition trigger)."""
        if not self.running:
            return
        self.server.cpu.clear_load(self.app_name)
        self.running = False
        self.stopped_at_us = self.sim.now

    def schedule(self, start_us: float, stop_us: float) -> None:
        """Run the job over an absolute [start, stop) window."""
        if stop_us <= start_us:
            raise ConfigurationError("stop must come after start")
        self.sim.schedule_at(start_us, self.start, name=f"{self.app_name}.start")
        self.sim.schedule_at(stop_us, self.stop, name=f"{self.app_name}.stop")
