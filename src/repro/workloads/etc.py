"""The Facebook "ETC" key-value workload (Atikoglu et al. [7]).

§9.2 drives the Figure 6 transition experiment with "a mutilate based
memcached client, using the Facebook 'ETC' arrival distribution".  The
published characteristics we reproduce:

* key popularity is heavily skewed (Zipf-like; a small fraction of keys
  receives most requests — the paper's §5.3 cites 3%–35% unique keys
  requested per hour);
* values are small (tens to hundreds of bytes dominate);
* the mix is read-dominated (ETC is ~97% GET).
"""

from __future__ import annotations

import math
import random
from typing import List

from ..errors import ConfigurationError


class ZipfSampler:
    """Zipf(s) over ranks 1..n with O(1) amortized sampling.

    Uses the rejection-inversion method of Hörmann & Derflinger, which is
    exact for the Zipf distribution and avoids materializing the CDF (the
    keyspaces here reach millions of keys).
    """

    def __init__(self, n: int, s: float, rng: random.Random):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if s <= 0 or s == 1.0:
            # s=1 has a removable singularity in H below; nudge it.
            s = 1.0000001 if s == 1.0 else s
        if s <= 0:
            raise ConfigurationError("s must be positive")
        self.n = n
        self.s = s
        self._rng = rng
        self._h_x1 = self._h(1.5) - 1.0
        self._h_n = self._h(n + 0.5)

    def _h(self, x: float) -> float:
        return (x ** (1.0 - self.s)) / (1.0 - self.s)

    def _h_inv(self, x: float) -> float:
        return (x * (1.0 - self.s)) ** (1.0 / (1.0 - self.s))

    def sample(self) -> int:
        """A rank in 1..n, rank 1 most popular."""
        while True:
            u = self._h_n + self._rng.random() * (self._h_x1 - self._h_n)
            x = self._h_inv(u)
            k = int(x + 0.5)
            k = min(max(k, 1), self.n)
            if k - x <= 1.0 or u >= self._h(k + 0.5) - math.exp(
                -self.s * math.log(k)
            ):
                return k


#: ETC value-size distribution: (upper bound bytes, cumulative probability).
#: A coarse fit of the Atikoglu et al. ETC size CDF: dominated by <320B.
_ETC_VALUE_SIZE_CDF = [
    (16, 0.10),
    (32, 0.30),
    (64, 0.55),
    (128, 0.75),
    (320, 0.90),
    (1024, 0.97),
    (4096, 1.00),
]


class EtcWorkload:
    """Key/value/op samplers with ETC-like statistics."""

    GET_FRACTION = 0.97

    def __init__(
        self,
        keyspace: int = 1_000_000,
        zipf_s: float = 0.99,
        seed: int = 7,
    ):
        if keyspace < 1:
            raise ConfigurationError("keyspace must be >= 1")
        self._rng = random.Random(seed)
        self._zipf = ZipfSampler(keyspace, zipf_s, self._rng)
        self.keyspace = keyspace

    # -- samplers (pass directly to the clients) ----------------------------

    def key(self) -> str:
        return f"key:{self._zipf.sample():08d}"

    def value(self) -> bytes:
        u = self._rng.random()
        for size, cum in _ETC_VALUE_SIZE_CDF:
            if u <= cum:
                return b"v" * size
        return b"v" * _ETC_VALUE_SIZE_CDF[-1][0]  # pragma: no cover

    @property
    def set_fraction(self) -> float:
        return 1.0 - self.GET_FRACTION

    @property
    def rng(self) -> random.Random:
        return self._rng

    # -- warm-up helpers -----------------------------------------------------

    def hot_keys(self, count: int) -> List[str]:
        """The ``count`` most popular keys (for preloading stores)."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        return [f"key:{rank:08d}" for rank in range(1, min(count, self.keyspace) + 1)]

    def preload(self, store_set, count: int) -> None:
        """Populate a store with the hot keys via ``store_set(key, value)``."""
        for key in self.hot_keys(count):
            store_set(key, self.value())
