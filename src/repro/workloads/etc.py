"""The Facebook "ETC" key-value workload (Atikoglu et al. [7]).

§9.2 drives the Figure 6 transition experiment with "a mutilate based
memcached client, using the Facebook 'ETC' arrival distribution".  The
published characteristics we reproduce:

* key popularity is heavily skewed (Zipf-like; a small fraction of keys
  receives most requests — the paper's §5.3 cites 3%–35% unique keys
  requested per hour);
* values are small (tens to hundreds of bytes dominate);
* the mix is read-dominated (ETC is ~97% GET).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Callable, List

from ..errors import ConfigurationError
from ..net.classifier import key_shard


class ZipfSampler:
    """Zipf(s) over ranks 1..n with O(1) amortized sampling.

    Uses the rejection-inversion method of Hörmann & Derflinger, which is
    exact for the Zipf distribution and avoids materializing the CDF (the
    keyspaces here reach millions of keys).
    """

    def __init__(self, n: int, s: float, rng: random.Random):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if s <= 0 or s == 1.0:
            # s=1 has a removable singularity in H below; nudge it.
            s = 1.0000001 if s == 1.0 else s
        if s <= 0:
            raise ConfigurationError("s must be positive")
        self.n = n
        self.s = s
        self._rng = rng
        self._h_x1 = self._h(1.5) - 1.0
        self._h_n = self._h(n + 0.5)
        # hot-path constants (hoisted out of sample(); identical floats to
        # the expressions they replace, so the accept/reject decisions — and
        # therefore the RNG draw sequence — are unchanged)
        self._one_minus_s = 1.0 - self.s
        self._inv_one_minus_s = 1.0 / (1.0 - self.s)
        self._span = self._h_x1 - self._h_n
        #: rank -> acceptance threshold h(k+0.5) - k^-s.  The Zipf skew
        #: concentrates samples on a few ranks, so this stays small and
        #: hits almost always.
        self._accept: dict = {}

    def _h(self, x: float) -> float:
        return (x ** (1.0 - self.s)) / (1.0 - self.s)

    def _h_inv(self, x: float) -> float:
        return (x * (1.0 - self.s)) ** (1.0 / (1.0 - self.s))

    def sample(self) -> int:
        """A rank in 1..n, rank 1 most popular."""
        rand = self._rng.random
        h_n = self._h_n
        span = self._span
        oms = self._one_minus_s
        inv = self._inv_one_minus_s
        n = self.n
        accept = self._accept
        while True:
            u = h_n + rand() * span
            x = (u * oms) ** inv
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > n:
                k = n
            if k - x <= 1.0:
                return k
            threshold = accept.get(k)
            if threshold is None:
                threshold = ((k + 0.5) ** oms) / oms - math.exp(
                    -self.s * math.log(k)
                )
                accept[k] = threshold
            if u >= threshold:
                return k


#: ETC value-size distribution: (upper bound bytes, cumulative probability).
#: A coarse fit of the Atikoglu et al. ETC size CDF: dominated by <320B.
_ETC_VALUE_SIZE_CDF = [
    (16, 0.10),
    (32, 0.30),
    (64, 0.55),
    (128, 0.75),
    (320, 0.90),
    (1024, 0.97),
    (4096, 1.00),
]


def _sample_value(rng: random.Random) -> bytes:
    """One ETC-distributed value (shared by the full and sharded workloads)."""
    u = rng.random()
    for size, cum in _ETC_VALUE_SIZE_CDF:
        if u <= cum:
            return b"v" * size
    return b"v" * _ETC_VALUE_SIZE_CDF[-1][0]  # pragma: no cover


class EtcWorkload:
    """Key/value/op samplers with ETC-like statistics."""

    GET_FRACTION = 0.97

    def __init__(
        self,
        keyspace: int = 1_000_000,
        zipf_s: float = 0.99,
        seed: int = 7,
    ):
        if keyspace < 1:
            raise ConfigurationError("keyspace must be >= 1")
        self._rng = random.Random(seed)
        self._zipf = ZipfSampler(keyspace, zipf_s, self._rng)
        self.keyspace = keyspace

    # -- samplers (pass directly to the clients) ----------------------------

    def key(self) -> str:
        return f"key:{self._zipf.sample():08d}"

    def value(self) -> bytes:
        return _sample_value(self._rng)

    @property
    def set_fraction(self) -> float:
        return 1.0 - self.GET_FRACTION

    @property
    def rng(self) -> random.Random:
        return self._rng

    # -- warm-up helpers -----------------------------------------------------

    def hot_keys(self, count: int) -> List[str]:
        """The ``count`` most popular keys (for preloading stores)."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        return [f"key:{rank:08d}" for rank in range(1, min(count, self.keyspace) + 1)]

    def preload(self, store_set, count: int) -> None:
        """Populate a store with the hot keys via ``store_set(key, value)``."""
        for key in self.hot_keys(count):
            store_set(key, self.value())


class EtcShardStream:
    """One shard's slice of a :class:`ShardedEtcWorkload`.

    Draws from its own Zipf sampler over the *global* keyspace and
    rejection-filters to the keys this shard owns, so each host sees the
    global popularity skew restricted to its shard, with an independent
    deterministic RNG (adding a host does not perturb the others).
    """

    def __init__(self, parent: "ShardedEtcWorkload", shard: int, seed: int):
        self.parent = parent
        self.shard = shard
        self._rng = random.Random(seed)
        self._zipf = ZipfSampler(parent.keyspace, parent.zipf_s, self._rng)

    def key(self) -> str:
        """A key owned by this shard, global-Zipf-distributed within it."""
        # The rejection-inversion loop from ZipfSampler.sample is inlined:
        # the shard filter rejects ~(n_shards-1)/n_shards of draws, so the
        # loop body runs many times per key and per-call overhead dominates.
        # Float expressions and RNG call order are identical to sample().
        zipf = self._zipf
        rand = zipf._rng.random
        h_n = zipf._h_n
        span = zipf._span
        oms = zipf._one_minus_s
        inv = zipf._inv_one_minus_s
        n = zipf.n
        s = zipf.s
        accept = zipf._accept
        accept_get = accept.get
        cache = self.parent._rank_cache
        cache_get = cache.get
        n_shards = self.parent.n_shards
        shard = self.shard
        while True:
            u = h_n + rand() * span
            x = (u * oms) ** inv
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > n:
                k = n
            if k - x > 1.0:
                threshold = accept_get(k)
                if threshold is None:
                    threshold = ((k + 0.5) ** oms) / oms - math.exp(
                        -s * math.log(k)
                    )
                    accept[k] = threshold
                if u < threshold:
                    continue
            entry = cache_get(k)
            if entry is None:
                key = f"key:{k:08d}"
                entry = (key, key_shard(key, n_shards))
                cache[k] = entry
            if entry[1] == shard:
                return entry[0]

    def value(self) -> bytes:
        return _sample_value(self._rng)

    @property
    def set_fraction(self) -> float:
        return 1.0 - EtcWorkload.GET_FRACTION

    @property
    def rng(self) -> random.Random:
        return self._rng

    def preload(self, store_set, count: int = 0) -> None:
        """Populate a host store with this shard's keys (hottest first)."""
        for key in self.parent.shard_keys(self.shard, count or self.parent.keyspace):
            store_set(key, self.value())


class ShardedEtcWorkload:
    """The ETC workload split across a rack of N KVS hosts by key shard.

    Shard ownership is :func:`repro.net.classifier.key_shard` over the key
    string — the same mapping the ToR's :class:`KeyShardRouter` uses — so
    a request generated for shard *i* is guaranteed to be routed to host
    *i*'s store, which was preloaded with exactly those keys.
    """

    def __init__(
        self,
        keyspace: int = 1_000_000,
        n_shards: int = 8,
        zipf_s: float = 0.99,
        seed: int = 7,
    ):
        if keyspace < 1:
            raise ConfigurationError("keyspace must be >= 1")
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.keyspace = keyspace
        self.n_shards = n_shards
        self.zipf_s = zipf_s
        self.seed = seed
        #: rank -> (key string, owning shard), shared by all shard streams
        #: (ownership depends only on the rank and the shard count)
        self._rank_cache: dict = {}

    # -- shard topology ------------------------------------------------------

    def shard_of(self, key: str) -> int:
        return key_shard(key, self.n_shards)

    def shard_keys(self, shard: int, count: int) -> List[str]:
        """Up to ``count`` keys owned by ``shard``, most popular first."""
        self._check_shard(shard)
        keys = []
        for rank in range(1, self.keyspace + 1):
            key = f"key:{rank:08d}"
            if key_shard(key, self.n_shards) == shard:
                keys.append(key)
                if len(keys) >= count:
                    break
        return keys

    def shard_weights(self, max_rank: int = 200_000) -> List[float]:
        """Traffic fraction per shard under the global Zipf popularity.

        Sums the (unnormalized) Zipf pmf ``rank**-s`` per owning shard over
        the first ``min(keyspace, max_rank)`` ranks, then normalizes; used
        to split a rack's total offered rate into per-host client rates.
        """
        weights = [0.0] * self.n_shards
        for rank in range(1, min(self.keyspace, max_rank) + 1):
            p = rank ** (-self.zipf_s)
            weights[key_shard(f"key:{rank:08d}", self.n_shards)] += p
        total = sum(weights)
        return [w / total for w in weights]

    # -- per-shard streams ---------------------------------------------------

    def stream(self, shard: int) -> EtcShardStream:
        """The independent key/value sampler for one shard."""
        self._check_shard(shard)
        # Guard the rejection sampler: a shard owning zero keys would make
        # EtcShardStream.key() spin forever (possible when the keyspace is
        # tiny relative to the shard count).
        if not self.shard_keys(shard, 1):
            raise ConfigurationError(
                f"shard {shard} owns no keys (keyspace={self.keyspace}, "
                f"n_shards={self.n_shards}); grow the keyspace or shrink the rack"
            )
        digest = hashlib.sha256(f"{self.seed}:etc-shard:{shard}".encode()).digest()
        return EtcShardStream(self, shard, int.from_bytes(digest[:8], "big"))

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside [0, {self.n_shards})"
            )
