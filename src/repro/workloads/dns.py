"""DNS query workloads — the anycast rack's name streams.

A rack's authoritative DNS service (§3.3) answers for one zone from every
host: the replicas are identical, and the ToR spreads queries by qname hash
(:meth:`repro.net.classifier.KeyShardRouter.for_qnames`).  The workload
side mirrors :class:`repro.workloads.etc.ShardedEtcWorkload`: one global
Zipf popularity over the zone's names, split into independent per-host
streams that generate only the names the qname hash routes to their host —
so each client's slice is exactly the traffic its host will serve, and the
offered rate can be divided by the shards' popularity weights.
"""

from __future__ import annotations

import hashlib
import random
from typing import List

from ..apps.dns.message import ARecord
from ..errors import ConfigurationError
from ..net.classifier import key_shard
from .etc import ZipfSampler


class DnsNameWorkload:
    """Zipf-popular queries over a synthetic rack-service zone.

    Names are ``svc<rank>.<domain>`` with rank 1 most popular;
    ``miss_fraction`` of queries ask for names beyond the zone (answered
    NXDOMAIN, §3.3: "cannot resolve the name").
    """

    def __init__(
        self,
        n_names: int = 1_000,
        zipf_s: float = 0.99,
        seed: int = 7,
        domain: str = "rack.dc.example",
        miss_fraction: float = 0.0,
    ):
        if n_names < 1:
            raise ConfigurationError("n_names must be >= 1")
        if not 0.0 <= miss_fraction < 1.0:
            raise ConfigurationError("miss_fraction must be in [0, 1)")
        self.n_names = n_names
        self.zipf_s = zipf_s
        self.domain = domain
        self.miss_fraction = miss_fraction
        self._rng = random.Random(seed)
        self._zipf = ZipfSampler(n_names, zipf_s, self._rng)

    def name_of_rank(self, rank: int) -> str:
        return f"svc{rank:06d}.{self.domain}"

    def name(self) -> str:
        """One query name (the sampler handed to a client)."""
        if self.miss_fraction and self._rng.random() < self.miss_fraction:
            return self.name_of_rank(self.n_names + self._rng.randrange(1, 1000))
        return self.name_of_rank(self._zipf.sample())

    def records(self) -> List[ARecord]:
        """The zone's A records (every anycast replica loads all of them)."""
        return [
            ARecord(
                self.name_of_rank(rank),
                f"10.{(rank >> 16) & 255}.{(rank >> 8) & 255}.{rank & 255}",
            )
            for rank in range(1, self.n_names + 1)
        ]


class DnsShardStream:
    """One host's slice of a :class:`ShardedDnsWorkload`.

    Draws from its own Zipf sampler over the *global* name popularity and
    rejection-filters to the qnames the ToR routes to this host, with an
    independent deterministic RNG per shard.
    """

    def __init__(self, parent: "ShardedDnsWorkload", shard: int, seed: int):
        self.parent = parent
        self.shard = shard
        self._rng = random.Random(seed)
        self._zipf = ZipfSampler(parent.n_names, parent.zipf_s, self._rng)

    def name(self) -> str:
        parent = self.parent
        while True:
            if parent.miss_fraction and self._rng.random() < parent.miss_fraction:
                # out-of-zone names hash to shards like any other qname
                qname = parent.name_of_rank(
                    parent.n_names + self._rng.randrange(1, 1000)
                )
            else:
                qname = parent.name_of_rank(self._zipf.sample())
            if key_shard(qname, parent.n_shards) == self.shard:
                return qname


class ShardedDnsWorkload(DnsNameWorkload):
    """The DNS query stream split across N anycast hosts by qname hash.

    Shard ownership is :func:`repro.net.classifier.key_shard` over the
    query name — the same mapping the ToR's qname router uses — so a query
    generated for shard *i* is guaranteed to be steered to host *i*.
    Unlike the KVS split, every host still holds the whole zone; only the
    *traffic* is partitioned.
    """

    def __init__(
        self,
        n_names: int = 1_000,
        n_shards: int = 2,
        zipf_s: float = 0.99,
        seed: int = 7,
        domain: str = "rack.dc.example",
        miss_fraction: float = 0.0,
    ):
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        super().__init__(
            n_names=n_names,
            zipf_s=zipf_s,
            seed=seed,
            domain=domain,
            miss_fraction=miss_fraction,
        )
        self.n_shards = n_shards
        self.seed = seed

    def shard_of(self, qname: str) -> int:
        return key_shard(qname, self.n_shards)

    def shard_weights(self) -> List[float]:
        """Traffic fraction per shard under the global Zipf popularity."""
        weights = [0.0] * self.n_shards
        for rank in range(1, self.n_names + 1):
            p = rank ** (-self.zipf_s)
            weights[self.shard_of(self.name_of_rank(rank))] += p
        total = sum(weights)
        return [w / total for w in weights]

    def stream(self, shard: int) -> DnsShardStream:
        """The independent name sampler for one shard."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(f"shard {shard} outside [0, {self.n_shards})")
        if not any(
            self.shard_of(self.name_of_rank(rank)) == shard
            for rank in range(1, self.n_names + 1)
        ):
            raise ConfigurationError(
                f"shard {shard} owns no names (n_names={self.n_names}, "
                f"n_shards={self.n_shards}); grow the zone or shrink the rack"
            )
        digest = hashlib.sha256(f"{self.seed}:dns-shard:{shard}".encode()).digest()
        return DnsShardStream(self, shard, int.from_bytes(digest[:8], "big"))
