"""OSNT-style offered-load schedules.

§4.1's methodology is a slow sweep: "starting with an idle system, and then
gradually increasing the query rate until reaching peak performance".
A :class:`RateSchedule` describes offered load as a function of time; the
drivers apply it to a client's ``set_rate``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim import Simulator


class RateSchedule:
    """Piecewise-constant offered load: a list of (start_us, rate_pps)."""

    def __init__(self, steps: Sequence[Tuple[float, float]]):
        if not steps:
            raise ConfigurationError("schedule needs at least one step")
        times = [t for t, _ in steps]
        if times != sorted(times):
            raise ConfigurationError("schedule steps must be time-ordered")
        if any(r < 0 for _, r in steps):
            raise ConfigurationError("rates must be >= 0")
        if times[0] != 0.0:
            steps = [(0.0, 0.0)] + list(steps)
        self._times = [t for t, _ in steps]
        self._rates = [r for _, r in steps]

    def rate_at(self, time_us: float) -> float:
        """Offered rate at ``time_us``."""
        idx = bisect_right(self._times, time_us) - 1
        return self._rates[max(0, idx)]

    @property
    def steps(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._rates))

    def apply(self, sim: Simulator, set_rate) -> None:
        """Schedule ``set_rate(rate)`` calls at each step boundary."""
        for time_us, rate in zip(self._times, self._rates):
            if time_us <= sim.now:
                set_rate(rate)
            else:
                sim.schedule_at(
                    time_us, lambda r=rate: set_rate(r), name="rate-schedule"
                )

    @property
    def end_us(self) -> float:
        return self._times[-1]


def RampSchedule(
    start_rate_pps: float,
    end_rate_pps: float,
    duration_us: float,
    steps: int = 20,
) -> RateSchedule:
    """The §4.1 sweep: rate ramping from start to end over ``duration_us``."""
    if steps < 1:
        raise ConfigurationError("steps must be >= 1")
    if duration_us <= 0:
        raise ConfigurationError("duration must be positive")
    points = []
    for i in range(steps):
        t = duration_us * i / steps
        rate = start_rate_pps + (end_rate_pps - start_rate_pps) * i / max(1, steps - 1)
        points.append((t, rate))
    return RateSchedule(points)


def StepSchedule(
    phases: Sequence[Tuple[float, float]],
) -> RateSchedule:
    """Phases given as (duration_us, rate) pairs, e.g. the Figure 6 trace:
    low load, then sustained high load, then low again."""
    points = []
    t = 0.0
    for duration, rate in phases:
        if duration <= 0:
            raise ConfigurationError("phase durations must be positive")
        points.append((t, rate))
        t += duration
    return RateSchedule(points)
