"""Google cluster trace synthesis and the §9.3 offload-candidate analysis.

The paper mines the Google cluster trace [68, 80] for:

* "90% of resource utilization is by jobs longer than two hours, though
  these jobs represent only 5% of the total number of jobs";
* "more than 1.39 million unique tasks in the trace that utilize for at
  least five minutes 10% or more of a CPU core" — offload candidates;
* "on average, every node within the cluster has 7.7 (normalized) CPU cores
  running such tasks within every five minutes sample period" — which
  diminishes per-node offload benefit and motivates the *load-diminishing*
  usage model ("moving the last (or first) job to the network will save
  power").

The real trace is tens of GB; :class:`GoogleTraceSynthesizer` generates a
task population with the published duration/utilization mix, and
:func:`analyze_offload_candidates` is the analysis a user would run over
the real trace schema (task id, node, start, duration, avg core usage).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .. import calibration as cal
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Task:
    """One task record (a row of the simplified trace schema)."""

    task_id: int
    node: int
    start_s: float
    duration_s: float
    avg_core_usage: float  # normalized CPU cores, may exceed 1.0

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.avg_core_usage < 0:
            raise ConfigurationError("core usage must be >= 0")


@dataclass(frozen=True)
class GoogleTraceAnalysis:
    """Outputs of the §9.3 analysis."""

    total_tasks: int
    offload_candidates: int
    candidate_fraction: float
    long_job_count_fraction: float
    long_job_util_fraction: float
    avg_candidate_cores_per_node: float


class GoogleTraceSynthesizer:
    """Generates a synthetic task population with the §9.3 mix.

    Structure: each node runs a roughly constant population of *long*
    candidate tasks (hours, substantial core usage) sized so the average
    candidate cores per node matches the paper's 7.7, plus a churn of short
    tasks so long jobs are ~5% of the task count while carrying ~90% of the
    utilization.
    """

    HOUR_S = 3600.0
    #: mean core usage of a long task (normalized cores)
    LONG_TASK_MEAN_CORES = 0.55
    #: short:long task count ratio (long jobs are ~5% of tasks, §9.3)
    SHORT_PER_LONG = 19

    def __init__(self, seed: int = 23):
        self._rng = random.Random(seed)

    def generate(
        self,
        n_nodes: int = 50,
        duration_h: float = 6.0,
        candidate_cores_per_node: float = cal.GOOGLE_AVG_CANDIDATE_CORES_PER_NODE,
    ) -> List[Task]:
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if duration_h <= 0:
            raise ConfigurationError("duration must be positive")
        if candidate_cores_per_node <= 0:
            raise ConfigurationError("candidate_cores_per_node must be positive")
        horizon_s = duration_h * self.HOUR_S
        slots_per_node = max(1, round(candidate_cores_per_node / self.LONG_TASK_MEAN_CORES))
        tasks: List[Task] = []
        task_id = 0
        for node in range(n_nodes):
            long_count = 0
            # Long-task "slots": each slot is continuously occupied by
            # back-to-back long tasks, keeping the concurrent candidate
            # population near the target.
            for _ in range(slots_per_node):
                t = -self._rng.uniform(0.0, 4.0) * self.HOUR_S  # mid-flight at t=0
                while t < horizon_s:
                    duration = self.HOUR_S * (2.0 + 10.0 * self._rng.random() ** 2)
                    usage = max(0.10, self._rng.gauss(self.LONG_TASK_MEAN_CORES, 0.2))
                    start = max(0.0, t)
                    end = min(horizon_s, t + duration)
                    if end > start:
                        tasks.append(
                            Task(task_id, node, start, end - start, usage)
                        )
                        task_id += 1
                        long_count += 1
                    t += duration
            # Short-task churn: mostly non-candidates (low usage or brief).
            for _ in range(long_count * self.SHORT_PER_LONG):
                duration = max(5.0, self._rng.expovariate(1.0 / 300.0))
                duration = min(duration, 2.0 * self.HOUR_S - 1.0)
                usage = max(0.01, self._rng.gauss(0.10, 0.08))
                start = self._rng.uniform(0.0, max(1.0, horizon_s - duration))
                tasks.append(Task(task_id, node, start, duration, usage))
                task_id += 1
        return tasks


def analyze_offload_candidates(
    tasks: Sequence[Task],
    min_core_fraction: float = cal.GOOGLE_CANDIDATE_MIN_CORE_FRACTION,
    min_duration_s: float = cal.GOOGLE_CANDIDATE_MIN_DURATION_S,
    long_job_threshold_s: float = 7200.0,
) -> GoogleTraceAnalysis:
    """The §9.3 analysis over a task population.

    A task is an *offload candidate* if it uses at least
    ``min_core_fraction`` of a core for at least ``min_duration_s``
    (paper: ≥10% of a core for ≥5 minutes).
    """
    if not tasks:
        raise ConfigurationError("empty task population")
    candidates = [
        t
        for t in tasks
        if t.avg_core_usage >= min_core_fraction and t.duration_s >= min_duration_s
    ]
    total_core_seconds = sum(t.avg_core_usage * t.duration_s for t in tasks)
    long_jobs = [t for t in tasks if t.duration_s > long_job_threshold_s]
    long_core_seconds = sum(t.avg_core_usage * t.duration_s for t in long_jobs)

    # Average candidate cores per node per 5-minute sample: integrate
    # candidate core-seconds and divide by (nodes × trace span).
    nodes = {t.node for t in tasks}
    span_s = max(t.start_s + t.duration_s for t in tasks) - min(
        t.start_s for t in tasks
    )
    candidate_core_seconds = sum(t.avg_core_usage * t.duration_s for t in candidates)
    avg_cores_per_node = (
        candidate_core_seconds / (len(nodes) * span_s) if span_s > 0 else 0.0
    )

    return GoogleTraceAnalysis(
        total_tasks=len(tasks),
        offload_candidates=len(candidates),
        candidate_fraction=len(candidates) / len(tasks),
        long_job_count_fraction=len(long_jobs) / len(tasks),
        long_job_util_fraction=(
            long_core_seconds / total_core_seconds if total_core_seconds else 0.0
        ),
        avg_candidate_cores_per_node=avg_cores_per_node,
    )


def load_diminishing_saving_w(
    jobs_on_server: int, per_job_offload_saving_w: float = 20.0
) -> float:
    """§9.3's alternative usage model: 'as jobs end or are migrated from the
    server, moving the last (or first) job to the network will save power.'

    With many co-resident jobs the marginal saving of offloading one is
    small (the server stays active for the others); with one job left,
    offloading idles the server and saves the full figure.
    """
    if jobs_on_server < 0:
        raise ConfigurationError("jobs_on_server must be >= 0")
    if jobs_on_server == 0:
        return 0.0
    return per_job_offload_saving_w / jobs_on_server
