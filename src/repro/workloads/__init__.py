"""Workload generators and trace models.

* :mod:`repro.workloads.osnt` — OSNT-style rate-controlled offered load
  (§4.1: "We used OSNT to send traffic, which enabled us to control data
  rates at very fine granularities").
* :mod:`repro.workloads.etc` — the Facebook "ETC" key-value workload [7]
  (Zipf key popularity, small values, high GET ratio) used by the Figure 6
  experiment.
* :mod:`repro.workloads.colocated` — the ChainerMN-style co-located CPU
  workload of Figure 6.
* :mod:`repro.workloads.dns` — Zipf-popular DNS query streams over a rack
  service zone, split per anycast host by qname hash (§3.3 at rack scale).
* :mod:`repro.workloads.dynamo` — Facebook Dynamo power-variation trace
  synthesis + the §9.3 variation-percentile analysis.
* :mod:`repro.workloads.google_trace` — Google cluster trace synthesis +
  the §9.3 offload-candidate analysis.
"""

from .osnt import RateSchedule, RampSchedule, StepSchedule
from .etc import EtcWorkload, EtcShardStream, ShardedEtcWorkload
from .dns import DnsNameWorkload, DnsShardStream, ShardedDnsWorkload
from .colocated import ChainerMNWorkload
from .dynamo import DynamoTraceSynthesizer, PowerVariationAnalysis, analyze_power_variation
from .google_trace import (
    GoogleTraceSynthesizer,
    GoogleTraceAnalysis,
    Task,
    analyze_offload_candidates,
)
from .replay import (
    ReplayResult,
    compare_policies,
    predictive_policy,
    replay_trace,
    static_policy,
    threshold_policy,
)

__all__ = [
    "RateSchedule",
    "RampSchedule",
    "StepSchedule",
    "EtcWorkload",
    "EtcShardStream",
    "ShardedEtcWorkload",
    "DnsNameWorkload",
    "DnsShardStream",
    "ShardedDnsWorkload",
    "ChainerMNWorkload",
    "DynamoTraceSynthesizer",
    "PowerVariationAnalysis",
    "analyze_power_variation",
    "GoogleTraceSynthesizer",
    "GoogleTraceAnalysis",
    "Task",
    "analyze_offload_candidates",
    "ReplayResult",
    "compare_policies",
    "predictive_policy",
    "replay_trace",
    "static_policy",
    "threshold_policy",
]
