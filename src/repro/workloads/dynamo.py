"""Facebook Dynamo power-variation traces (§9.3).

The paper reads Dynamo [82] for two facts relevant to on-demand INC:

1. webserver dynamic power is high even at low load (30W at 10% on
   Westmere, 75W on Haswell) — more than a fully-utilized SmartNIC;
2. the *power variation* over a scheduling period decides whether a shift
   is safe: rack-level p99 variation is 12.8% over 3s and 26.6% over 30s
   (median <5%); caching varies 9.2% median / 26.2% p99 over 60s; web
   serving 37.2% / 62.2%.

We have no access to the Dynamo dataset, so :class:`DynamoTraceSynthesizer`
generates per-second power traces whose variation percentiles match the
published figures, and :func:`analyze_power_variation` computes the same
statistics the paper tabulates — the analysis code is what a user would
point at their own traces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .. import calibration as cal
from ..errors import ConfigurationError
from ..sim import percentile


@dataclass(frozen=True)
class PowerVariationAnalysis:
    """Variation statistics over one window length."""

    window_s: float
    median: float
    p99: float


def power_variation(trace_w: Sequence[float], window_samples: int) -> List[float]:
    """Relative power variation per sliding window: (max-min)/mean."""
    if window_samples < 2:
        raise ConfigurationError("window must cover at least 2 samples")
    if len(trace_w) < window_samples:
        raise ConfigurationError("trace shorter than the window")
    variations = []
    for start in range(0, len(trace_w) - window_samples + 1):
        window = trace_w[start : start + window_samples]
        mean = sum(window) / len(window)
        if mean <= 0:
            raise ConfigurationError("non-positive power in trace")
        variations.append((max(window) - min(window)) / mean)
    return variations


def analyze_power_variation(
    trace_w: Sequence[float], window_s: float, sample_period_s: float = 1.0
) -> PowerVariationAnalysis:
    """The §9.3 statistic: median and p99 of windowed power variation."""
    window_samples = max(2, int(round(window_s / sample_period_s)))
    variations = power_variation(trace_w, window_samples)
    return PowerVariationAnalysis(
        window_s=window_s,
        median=percentile(variations, 50.0),
        p99=percentile(variations, 99.0),
    )


class DynamoTraceSynthesizer:
    """Synthesizes per-second power traces with target variation stats.

    The generator superposes a slow random walk (diurnal-ish drift) with
    bursty spikes; ``burstiness`` tunes where the variation percentiles
    land.  Presets reproduce the workload classes the paper cites.
    """

    #: (median target, p99 target, window seconds) per §9.3 workload class.
    PRESETS = {
        "rack": (cal.DYNAMO_RACK_VARIATION_MEDIAN, cal.DYNAMO_RACK_VARIATION_30S_P99, 30.0),
        "caching": (
            cal.DYNAMO_CACHING_VARIATION_60S_MEDIAN,
            cal.DYNAMO_CACHING_VARIATION_60S_P99,
            60.0,
        ),
        "web": (cal.DYNAMO_WEB_VARIATION_MEDIAN, cal.DYNAMO_WEB_VARIATION_P99, 60.0),
    }

    def __init__(self, workload_class: str = "caching", seed: int = 11):
        if workload_class not in self.PRESETS:
            raise ConfigurationError(
                f"unknown class {workload_class!r}; choose from {sorted(self.PRESETS)}"
            )
        self.workload_class = workload_class
        self._rng = random.Random(seed)

    def generate(
        self, duration_s: int, mean_power_w: float = 200.0
    ) -> List[float]:
        """A per-second power trace of ``duration_s`` samples."""
        if duration_s < 2:
            raise ConfigurationError("duration must be >= 2 seconds")
        median_target, p99_target, window_s = self.PRESETS[self.workload_class]
        # Random-walk sigma sets the median variation: a mean-reverting walk
        # observed over an n-sample window has range ~ sigma*sqrt(n), so we
        # divide the target by that factor.  Spikes set the p99.
        walk_sigma = median_target * mean_power_w / (1.4 * window_s ** 0.5)
        spike_magnitude = (p99_target - median_target) * mean_power_w * 0.9
        spike_prob = 0.015
        level = mean_power_w
        trace = []
        for _ in range(duration_s):
            level += self._rng.gauss(0.0, walk_sigma)
            # mean-revert so the trace stays near the target mean
            level += 0.05 * (mean_power_w - level)
            sample = level
            if self._rng.random() < spike_prob:
                sample += self._rng.uniform(0.5, 1.0) * spike_magnitude
            trace.append(max(mean_power_w * 0.3, sample))
        return trace

    def paper_statistics(self) -> Dict[str, float]:
        """The published targets for this class (for reporting)."""
        median, p99, window = self.PRESETS[self.workload_class]
        return {"median": median, "p99": p99, "window_s": window}


def shift_safety(analysis: PowerVariationAnalysis, threshold: float = 0.30) -> bool:
    """The §9.3 rule of thumb: 'If there is low power variance over the
    scheduling period, it will be safe to use in-network computing.'"""
    return analysis.p99 < threshold
