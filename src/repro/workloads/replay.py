"""Trace-driven placement replay — the §8 energy model over real load traces.

Users point this at their own (duration, rate) load trace to answer the
paper's operational question: *how much energy would in-network computing
on demand have saved on my workload?*  Three policies are provided; custom
policies are any callable ``(rate_pps, in_hardware) -> bool``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..steady.base import SteadyModel

PlacementPolicy = Callable[[float, bool], bool]


def static_policy(hardware: bool) -> PlacementPolicy:
    """Always-software or always-hardware."""
    return lambda rate_pps, in_hardware: hardware


def threshold_policy(up_pps: float, down_pps: float) -> PlacementPolicy:
    """The §9.1 dual-threshold rule."""
    if up_pps <= down_pps:
        raise ConfigurationError("up_pps must exceed down_pps")

    def decide(rate_pps: float, in_hardware: bool) -> bool:
        if in_hardware:
            return rate_pps > down_pps
        return rate_pps >= up_pps

    return decide


def predictive_policy(
    software: SteadyModel,
    hardware: SteadyModel,
    standby_card_w: float,
    margin_w: float = 2.0,
) -> PlacementPolicy:
    """The PEAS-style rule: shift when the predicted saving clears a margin."""

    def decide(rate_pps: float, in_hardware: bool) -> bool:
        software_w = software.power_at(min(rate_pps, software.capacity_pps))
        hardware_w = hardware.power_at(min(rate_pps, hardware.capacity_pps))
        saving = software_w + standby_card_w - hardware_w
        if in_hardware:
            return saving > -margin_w
        return saving >= margin_w

    return decide


@dataclass
class ReplayResult:
    """Outcome of replaying one trace under one policy."""

    energy_j: float
    shifts: int
    time_in_hardware_s: float
    total_time_s: float
    #: (elapsed_s, rate_pps, in_hardware, power_w) per trace segment
    segments: List[Tuple[float, float, bool, float]] = field(default_factory=list)

    @property
    def mean_power_w(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.energy_j / self.total_time_s

    @property
    def hardware_fraction(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.time_in_hardware_s / self.total_time_s


def replay_trace(
    trace: Sequence[Tuple[float, float]],
    software: SteadyModel,
    hardware: SteadyModel,
    policy: PlacementPolicy,
    standby_card_w: float = 0.0,
    initial_hardware: bool = False,
) -> ReplayResult:
    """Integrate energy over a (duration_s, rate_pps) trace.

    While in software, the system pays the software model's power plus the
    §9.2 standby card cost; while in hardware, the hardware model's power.
    The policy is evaluated once per trace segment (the paper's controllers
    average over seconds; traces are assumed at that granularity or coarser).
    """
    if not trace:
        raise ConfigurationError("empty trace")
    in_hardware = initial_hardware
    energy = 0.0
    shifts = 0
    hardware_s = 0.0
    total_s = 0.0
    segments = []
    for duration_s, rate_pps in trace:
        if duration_s <= 0:
            raise ConfigurationError("segment durations must be positive")
        if rate_pps < 0:
            raise ConfigurationError("rates must be >= 0")
        want_hardware = policy(rate_pps, in_hardware)
        if want_hardware != in_hardware:
            shifts += 1
            in_hardware = want_hardware
        if in_hardware:
            power = hardware.power_at(min(rate_pps, hardware.capacity_pps))
            hardware_s += duration_s
        else:
            power = (
                software.power_at(min(rate_pps, software.capacity_pps))
                + standby_card_w
            )
        energy += power * duration_s
        total_s += duration_s
        segments.append((duration_s, rate_pps, in_hardware, power))
    return ReplayResult(
        energy_j=energy,
        shifts=shifts,
        time_in_hardware_s=hardware_s,
        total_time_s=total_s,
        segments=segments,
    )


def compare_policies(
    trace: Sequence[Tuple[float, float]],
    software: SteadyModel,
    hardware: SteadyModel,
    standby_card_w: float = 0.0,
    policies=None,
):
    """Replay a trace under a set of named policies; returns {name: result}."""
    if policies is None:
        policies = {
            "always-software": static_policy(False),
            "always-hardware": static_policy(True),
            "predictive": predictive_policy(software, hardware, standby_card_w),
        }
    return {
        name: replay_trace(
            trace, software, hardware, policy, standby_card_w=standby_card_w
        )
        for name, policy in policies.items()
    }
