"""Vectorized steady-model kernels: whole sweep grids in one array pass.

The per-point fast path (:func:`repro.scenarios.fastpath.steady_point`)
answers one pinned scenario at a time by walking its hosts through the
closed-form curves of :mod:`repro.steady`.  A §9.4 sweep asks the same
question at every point of a parameter grid, so the batched entry point
(:func:`repro.scenarios.fastpath.steady_grid`) flattens the grid into
struct-of-arrays host records and evaluates them through the kernels
here — the software α-curve, the hardware card line, the M/M/1-style
latency inflation, and the four-traversal M/D/1 uplink adder of
:mod:`repro.steady.fabric` — each in one numpy expression.

Byte-identity contract: every kernel reproduces its scalar counterpart's
expression *tree*, not just its formula, so the array path returns the
same 64-bit doubles the per-point path does.  Two consequences:

* reductions stay out of the kernels (the caller sums per spec, in host
  order, in python — numpy's pairwise summation rounds differently);
* ``u ** alpha`` is computed with scalar pow per element: numpy's SIMD
  array pow is *not* bit-identical to C ``pow`` (observed on numpy 2.x),
  while exponent 1.0 short-circuits to the base, which IEEE 754 makes
  exact in both worlds.

Every kernel also carries a pure-python fallback (no numpy importable,
or ``REPRO_PURE_PYTHON=1`` at import) that is the scalar loop itself, so
environments without numpy lose only speed.
"""

from __future__ import annotations

import os
from typing import List, Sequence

try:  # pragma: no cover - exercised via both dispatch branches
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_PURE_PYTHON"):
    _np = None


def have_numpy() -> bool:
    """Is the vectorized path active?  (False under REPRO_PURE_PYTHON=1.)"""
    return _np is not None


def _asarray(values: Sequence[float]):
    return _np.asarray(values, dtype=_np.float64)


def _pow_elementwise(base, exponent) -> "object":
    """``base ** exponent`` with scalar-pow semantics (numpy path).

    numpy's vectorized pow and C ``pow`` disagree in the last ulp for a
    few percent of inputs, which would break the byte-identity contract;
    exponent 1.0 returns the base exactly (IEEE 754 ``pow(x, 1) == x``),
    and everything else goes through python's float pow per element.
    """
    exps = exponent.tolist()
    if all(e == 1.0 for e in exps):
        return base.copy()
    return _np.fromiter(
        (b ** e for b, e in zip(base.tolist(), exps)),
        dtype=_np.float64,
        count=len(exps),
    )


def software_power(
    rate: Sequence[float],
    capacity: Sequence[float],
    idle_w: Sequence[float],
    span_w: Sequence[float],
    alpha: Sequence[float],
    poly_w: Sequence[float],
    poly_exp: Sequence[float],
    sub_w: Sequence[float],
    add_w: Sequence[float],
) -> List[float]:
    """The software α-curve per entry, with the power-save NIC swap.

    Mirrors ``SoftwareCurveModel.power_at`` — ``idle + span·u^α +
    poly·u^poly_exp`` at ``u = min(rate, cap)/cap`` — followed by the
    standby adjustment ``(p − sub_w) + add_w`` (both zero for a plain
    host, NIC idle out / card standby in for a power-save offload host).
    """
    if _np is None:
        out = []
        for r, c, i, s, a, pw, pe, sub, add in zip(
            rate, capacity, idle_w, span_w, alpha, poly_w, poly_exp,
            sub_w, add_w,
        ):
            u = min(r, c) / c
            p = i + s * (u ** a) + pw * (u ** pe)
            out.append((p - sub) + add)
        return out
    r, c = _asarray(rate), _asarray(capacity)
    u = _np.minimum(r, c) / c
    p = _asarray(idle_w) + _asarray(span_w) * _pow_elementwise(u, _asarray(alpha))
    pw = _asarray(poly_w)
    if _np.any(pw != 0.0):
        p = p + pw * _pow_elementwise(u, _asarray(poly_exp))
    else:
        # poly_w·u^e is +0.0 everywhere (u finite, weights all zero), and
        # p + 0.0 == p for the strictly positive p here — skip the pow
        p = p + 0.0
    return ((p - _asarray(sub_w)) + _asarray(add_w)).tolist()


def software_latency(
    rate: Sequence[float],
    capacity: Sequence[float],
    base_latency_us: Sequence[float],
) -> List[float]:
    """``SteadyModel.latency_at``: the base median inflated M/M/1-style
    toward saturation, ``min(10·base, base/(1−ρ))`` at ``ρ = min(0.99, u)``."""
    if _np is None:
        out = []
        for r, c, base in zip(rate, capacity, base_latency_us):
            rho = min(0.99, min(r, c) / c)
            out.append(min(base * 10.0, base / (1.0 - rho)))
        return out
    r, c = _asarray(rate), _asarray(capacity)
    base = _asarray(base_latency_us)
    rho = _np.minimum(0.99, _np.minimum(r, c) / c)
    return _np.minimum(base * 10.0, base / (1.0 - rho)).tolist()


def hardware_power(
    rate: Sequence[float],
    capacity: Sequence[float],
    fixed_w: Sequence[float],
    dyn_max_w: Sequence[float],
) -> List[float]:
    """``HardwareCardModel.power_at``: host idle + card draw (the
    ``fixed_w`` operand, probed once per device kind) plus the
    utilization-scaled dynamic adder."""
    if _np is None:
        return [
            f + d * (min(r, c) / c)
            for r, c, f, d in zip(rate, capacity, fixed_w, dyn_max_w)
        ]
    r, c = _asarray(rate), _asarray(capacity)
    u = _np.minimum(r, c) / c
    return (_asarray(fixed_w) + _asarray(dyn_max_w) * u).tolist()


def served_pps(rate: Sequence[float], capacity: Sequence[float]) -> List[float]:
    """``SteadyModel.achieved_pps``: offered rate saturating at capacity."""
    if _np is None:
        return [min(r, c) for r, c in zip(rate, capacity)]
    return _np.minimum(_asarray(rate), _asarray(capacity)).tolist()


def crossing_us(
    load_pps: Sequence[float],
    latency_us: Sequence[float],
    serialization_us: Sequence[float],
) -> List[float]:
    """``FabricUplinkModel.crossing_us``: one uplink-direction traversal —
    propagation + serialization + the mean M/D/1 FIFO wait of
    :func:`repro.net.link.fifo_wait_us` at the direction's offered load."""
    if _np is None:
        out = []
        for load, lat, ser in zip(load_pps, latency_us, serialization_us):
            service_s = ser / 1e6
            rho = min(load * service_s, 0.999)
            wait = service_s * rho / (2.0 * (1.0 - rho)) * 1e6
            out.append(lat + ser + wait)
        return out
    load = _asarray(load_pps)
    ser = _asarray(serialization_us)
    service_s = ser / 1e6
    rho = _np.minimum(load * service_s, 0.999)
    wait = service_s * rho / (2.0 * (1.0 - rho)) * 1e6
    return (_asarray(latency_us) + ser + wait).tolist()


def throughput_factor(
    load_pps: Sequence[float], capacity_pps: Sequence[float]
) -> List[float]:
    """``FabricUplinkModel.throughput_factor``: the fluid cap — 1.0 below
    the direction's nominal-packet saturation rate, proportional above."""
    if _np is None:
        return [
            1.0 if load <= cap else cap / load
            for load, cap in zip(load_pps, capacity_pps)
        ]
    load, cap = _asarray(load_pps), _asarray(capacity_pps)
    out = _np.ones(len(load), dtype=_np.float64)
    over = load > cap
    if over.any():
        out[over] = cap[over] / load[over]
    return out.tolist()
