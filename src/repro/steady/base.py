"""Steady-state model base classes.

A :class:`SteadyModel` answers, for one (application, platform) pair, the
questions the paper's Figure 3 sweeps ask: what does the system draw at a
given offered load, what does it actually serve, and what is the request
latency there.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import CapacityError, ConfigurationError


class SteadyModel:
    """Base class: a named curve with a capacity."""

    def __init__(self, name: str, capacity_pps: float):
        if capacity_pps <= 0:
            raise ConfigurationError("capacity must be positive")
        self.name = name
        self.capacity_pps = capacity_pps

    # -- throughput ----------------------------------------------------------

    def achieved_pps(self, offered_pps: float) -> float:
        """Served rate for an offered rate (saturates at capacity)."""
        if offered_pps < 0:
            raise ConfigurationError("offered rate must be >= 0")
        return min(offered_pps, self.capacity_pps)

    def utilization(self, offered_pps: float) -> float:
        return self.achieved_pps(offered_pps) / self.capacity_pps

    # -- interface ------------------------------------------------------------

    def power_at(self, offered_pps: float) -> float:  # pragma: no cover
        raise NotImplementedError

    def latency_at(self, offered_pps: float) -> float:
        """Median request latency (µs); default M/M/1-style inflation of the
        low-load latency toward saturation, capped at 10×."""
        base = self.base_latency_us()
        rho = min(0.99, self.utilization(offered_pps))
        return min(base * 10.0, base / (1.0 - rho) if rho < 1.0 else base * 10.0)

    def base_latency_us(self) -> float:  # pragma: no cover
        raise NotImplementedError

    def ops_per_watt(self, offered_pps: float) -> float:
        power = self.power_at(offered_pps)
        if power <= 0:
            raise CapacityError(f"{self.name}: non-positive power")
        return self.achieved_pps(offered_pps) / power

    def dynamic_power_w(self, offered_pps: float) -> float:
        """Power above idle at this load (the §6/§8 dynamic component)."""
        return self.power_at(offered_pps) - self.power_at(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, cap={self.capacity_pps:.0f}pps)"


class SoftwareCurveModel(SteadyModel):
    """A software system: P = idle + (peak−idle)·u^α, u = served/capacity.

    ``poly_w``/``poly_exp`` add the near-saturation term used for libpaxos
    (see repro.calibration); with ``poly_w=0`` this is the plain α-curve of
    memcached and NSD.
    """

    def __init__(
        self,
        name: str,
        capacity_pps: float,
        idle_w: float,
        peak_w: float,
        alpha: float = 1.0,
        poly_w: float = 0.0,
        poly_exp: float = 4.0,
        latency_us: float = 50.0,
    ):
        super().__init__(name, capacity_pps)
        if peak_w < idle_w:
            raise ConfigurationError("peak_w must be >= idle_w")
        self.idle_w = idle_w
        self.peak_w = peak_w
        self.alpha = alpha
        self.poly_w = poly_w
        self.poly_exp = poly_exp
        self._latency_us = latency_us

    def power_at(self, offered_pps: float) -> float:
        u = self.utilization(offered_pps)
        linear_span = self.peak_w - self.idle_w - self.poly_w
        return (
            self.idle_w
            + linear_span * (u ** self.alpha)
            + self.poly_w * (u ** self.poly_exp)
        )

    def base_latency_us(self) -> float:
        return self._latency_us


class HardwareCardModel(SteadyModel):
    """An in-network design: host (optional) + card with ~flat power.

    ``card_power_w()`` is probed live, so §5.1 state changes (clock gating,
    memory reset) show up in the curve; dynamic power is the card's
    utilization-scaled adder plus, for LaKe, the host-side miss handling.
    """

    def __init__(
        self,
        name: str,
        capacity_pps: float,
        card_power_w: Callable[[], float],
        card_dynamic_max_w: float,
        host_idle_w: float = 0.0,
        host_miss_model: Optional[Callable[[float], float]] = None,
        latency_us: float = 2.0,
    ):
        super().__init__(name, capacity_pps)
        self._card_power_w = card_power_w
        self.card_dynamic_max_w = card_dynamic_max_w
        self.host_idle_w = host_idle_w
        self._host_miss_model = host_miss_model
        self._latency_us = latency_us

    def power_at(self, offered_pps: float) -> float:
        u = self.utilization(offered_pps)
        power = self.host_idle_w + self._card_power_w() + self.card_dynamic_max_w * u
        if self._host_miss_model is not None:
            power += self._host_miss_model(self.achieved_pps(offered_pps))
        return power

    def latency_at(self, offered_pps: float) -> float:
        # Fully pipelined: latency is flat with load (§9.5).
        return self._latency_us

    def base_latency_us(self) -> float:
        return self._latency_us


def find_crossover(
    software: SteadyModel,
    hardware: SteadyModel,
    max_pps: Optional[float] = None,
    tolerance_pps: float = 100.0,
) -> Optional[float]:
    """The §8 tipping point: lowest rate where hardware power <= software.

    Returns None if the hardware never becomes cheaper below ``max_pps``.
    Bisection over the (monotone-difference) power curves.
    """
    hi = max_pps if max_pps is not None else min(
        software.capacity_pps, hardware.capacity_pps
    )
    lo = 0.0

    def hw_wins(rate: float) -> bool:
        return hardware.power_at(rate) <= software.power_at(rate)

    if hw_wins(lo):
        return 0.0
    if not hw_wins(hi):
        return None
    while hi - lo > tolerance_pps:
        mid = (lo + hi) / 2.0
        if hw_wins(mid):
            hi = mid
        else:
            lo = mid
    return hi
