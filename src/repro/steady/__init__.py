"""Analytic steady-state power/latency curves.

Each (application, platform) pair from §4 is a :class:`SteadyModel`
exposing ``power_at(rate)``, ``latency_at(rate)`` and ``capacity_pps`` —
the curves plotted in Figures 3 and 5.  The models are built from the same
calibration constants and component models as the DES substrate (the FPGA
cards are literally :class:`repro.hw.NetFpgaSume` instances), and the
integration tests check the two layers agree at overlapping rates.
"""

from . import grid
from .base import SteadyModel, SoftwareCurveModel, HardwareCardModel, find_crossover
from .fabric import NOMINAL_KVS_PACKET_BYTES, FabricUplinkModel
from .kvs import kvs_models
from .paxos import paxos_models
from .dns import dns_models
from .ondemand import (
    OnDemandModel,
    device_crossover_pps,
    device_hardware_model,
    device_software_model,
    make_ondemand_model,
)

__all__ = [
    "grid",
    "SteadyModel",
    "SoftwareCurveModel",
    "HardwareCardModel",
    "find_crossover",
    "NOMINAL_KVS_PACKET_BYTES",
    "FabricUplinkModel",
    "kvs_models",
    "paxos_models",
    "dns_models",
    "OnDemandModel",
    "device_crossover_pps",
    "device_hardware_model",
    "device_software_model",
    "make_ondemand_model",
]
