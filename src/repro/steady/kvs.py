"""Steady-state KVS models — the Figure 3(a) series.

Three curves: software memcached (per NIC), LaKe in a server, and LaKe
standalone.  The LaKe curves assume the post-warm-up regime where queries
hit in the card ("this graph is indicative of a case where all queries are
(after warm up) hit in LaKe", §9.2); an optional miss-ratio model adds the
host-side power of servicing misses.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..host.nic import NIC_INTEL_X520, NIC_MELLANOX_CX311A, Nic
from ..hw.fpga import PlatformMode, make_lake_fpga
from .base import HardwareCardModel, SoftwareCurveModel, SteadyModel


def memcached_model(nic: Nic = NIC_MELLANOX_CX311A) -> SoftwareCurveModel:
    """Software memcached through a given NIC (§4.2)."""
    return SoftwareCurveModel(
        name=f"memcached ({nic.name})",
        capacity_pps=nic.host_peak_pps,
        idle_w=cal.I7_IDLE_W,
        peak_w=cal.I7_MEMCACHED_PEAK_W,
        alpha=nic.host_power_alpha,
        latency_us=cal.MEMCACHED_SW_MEDIAN_US,
    )


def _host_miss_power(miss_ratio: float) -> Callable[[float], float]:
    """Host power for servicing the miss stream at a given overall rate.

    The host sees ``miss_ratio``·rate; we charge it along the memcached
    power curve's dynamic part (§9.2: "In a case where many queries are a
    miss in the hardware, more power would be consumed by server attending
    to these queries").
    """
    if not 0.0 <= miss_ratio <= 1.0:
        raise ConfigurationError("miss_ratio outside [0,1]")
    base = memcached_model()

    def model(rate_pps: float) -> float:
        if miss_ratio == 0.0:
            return 0.0
        return base.power_at(miss_ratio * rate_pps) - base.power_at(0.0)

    return model


def lake_in_server_model(
    pe_count: int = cal.LAKE_DEFAULT_PES,
    miss_ratio: float = 0.0,
    with_external_memories: bool = True,
) -> HardwareCardModel:
    """LaKe in the i7 host (card replaces the NIC, §4.2)."""
    card = make_lake_fpga(
        pe_count=pe_count,
        with_external_memories=with_external_memories,
        mode=PlatformMode.IN_SERVER,
    )
    capacity = min(cal.LAKE_LINE_RATE_PPS, max(1, pe_count) * cal.LAKE_PE_CAPACITY_PPS)
    return HardwareCardModel(
        name=f"LaKe in-server ({pe_count} PEs)",
        capacity_pps=capacity,
        card_power_w=card.power_w,
        card_dynamic_max_w=cal.FPGA_DYNAMIC_MAX_W,
        host_idle_w=cal.I7_IDLE_NO_NIC_W,
        host_miss_model=_host_miss_power(miss_ratio) if miss_ratio else None,
        latency_us=cal.LAKE_L1_HIT_US,
    )


def lake_standalone_model(pe_count: int = cal.LAKE_DEFAULT_PES) -> HardwareCardModel:
    """LaKe outside a server ("LaKe standalone" in Figure 3(a))."""
    card = make_lake_fpga(pe_count=pe_count, mode=PlatformMode.STANDALONE)
    capacity = min(cal.LAKE_LINE_RATE_PPS, max(1, pe_count) * cal.LAKE_PE_CAPACITY_PPS)
    return HardwareCardModel(
        name="LaKe standalone",
        capacity_pps=capacity,
        card_power_w=card.power_w,
        card_dynamic_max_w=cal.FPGA_DYNAMIC_MAX_W,
        host_idle_w=0.0,
        latency_us=cal.LAKE_L1_HIT_US,
    )


def kvs_hardware_model(device: str = "netfpga-sume") -> HardwareCardModel:
    """The KVS hardware curve on a named offload device — LaKe on the
    default NetFPGA, the device's own power figures otherwise (the per-
    device Figure 3(a) generalization)."""
    # lazy: repro.steady.ondemand imports this module
    from .ondemand import device_hardware_model

    return device_hardware_model("kvs", device)


def kvs_models(
    nic: Nic = NIC_MELLANOX_CX311A, miss_ratio: float = 0.0
) -> Dict[str, SteadyModel]:
    """The Figure 3(a) curve set."""
    return {
        "memcached": memcached_model(nic),
        "lake": lake_in_server_model(miss_ratio=miss_ratio),
        "lake-standalone": lake_standalone_model(),
    }
