"""Steady-state Paxos models — the Figure 3(b) series.

Eight curves: {libpaxos, DPDK, P4xos in-server, P4xos standalone} ×
{leader, acceptor}.  The §4.3 anchors: libpaxos acceptor peaks at 178K
msg/s on one core; DPDK's power is high and flat (constant polling); P4xos
in-server idles 10W below LaKe (49W); standalone P4xos is 18.2W idle with
≤1.2W dynamic.
"""

from __future__ import annotations

import enum
from typing import Dict

from .. import calibration as cal
from ..hw.fpga import PlatformMode, make_p4xos_fpga
from .base import HardwareCardModel, SoftwareCurveModel, SteadyModel


class PaxosRole(enum.Enum):
    LEADER = "leader"
    ACCEPTOR = "acceptor"


_SW_CAPACITY = {
    PaxosRole.LEADER: cal.LIBPAXOS_LEADER_CAPACITY_PPS,
    PaxosRole.ACCEPTOR: cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
}
_DPDK_CAPACITY = {
    PaxosRole.LEADER: cal.DPDK_LEADER_CAPACITY_PPS,
    PaxosRole.ACCEPTOR: cal.DPDK_ACCEPTOR_CAPACITY_PPS,
}
_SW_LATENCY = {
    PaxosRole.LEADER: cal.LIBPAXOS_LEADER_STACK_US,
    PaxosRole.ACCEPTOR: cal.LIBPAXOS_ACCEPTOR_STACK_US,
}


def libpaxos_model(role: PaxosRole = PaxosRole.ACCEPTOR) -> SoftwareCurveModel:
    """libpaxos on one core of the i7 (§4.3)."""
    return SoftwareCurveModel(
        name=f"libpaxos {role.value}",
        capacity_pps=_SW_CAPACITY[role],
        idle_w=cal.I7_IDLE_W,
        peak_w=cal.LIBPAXOS_PEAK_W,
        alpha=1.0,
        poly_w=cal.LIBPAXOS_POLY_W,
        poly_exp=cal.LIBPAXOS_POLY_EXP,
        latency_us=_SW_LATENCY[role],
    )


def dpdk_model(role: PaxosRole = PaxosRole.ACCEPTOR) -> SoftwareCurveModel:
    """libpaxos over DPDK: kernel bypass, constant polling (§4.3)."""
    return SoftwareCurveModel(
        name=f"DPDK {role.value}",
        capacity_pps=_DPDK_CAPACITY[role],
        idle_w=cal.DPDK_IDLE_W,
        peak_w=cal.DPDK_PEAK_W,
        alpha=1.0,
        latency_us=cal.DPDK_STACK_US,
    )


def p4xos_in_server_model(role: PaxosRole = PaxosRole.ACCEPTOR) -> HardwareCardModel:
    """P4xos on NetFPGA inside the i7 host (§4.3)."""
    card = make_p4xos_fpga(mode=PlatformMode.IN_SERVER)
    return HardwareCardModel(
        name=f"P4xos {role.value}",
        capacity_pps=cal.P4XOS_FPGA_CAPACITY_PPS,
        card_power_w=card.power_w,
        card_dynamic_max_w=cal.FPGA_DYNAMIC_MAX_W,
        host_idle_w=cal.I7_IDLE_NO_NIC_W,
        latency_us=cal.P4XOS_FPGA_PIPELINE_US,
    )


def p4xos_standalone_model(role: PaxosRole = PaxosRole.ACCEPTOR) -> HardwareCardModel:
    """P4xos standalone: 18.2W idle, ≤1.2W dynamic (§4.3)."""
    card = make_p4xos_fpga(mode=PlatformMode.STANDALONE)
    return HardwareCardModel(
        name=f"P4xos standalone {role.value}",
        capacity_pps=cal.P4XOS_FPGA_CAPACITY_PPS,
        card_power_w=card.power_w,
        card_dynamic_max_w=cal.P4XOS_STANDALONE_DYNAMIC_MAX_W,
        host_idle_w=0.0,
        latency_us=cal.P4XOS_FPGA_PIPELINE_US,
    )


def paxos_hardware_model(device: str = "netfpga-sume") -> HardwareCardModel:
    """The Paxos-leader hardware curve on a named offload device — P4xos on
    the default NetFPGA, the device's own power figures otherwise (the
    per-device Figure 3(b) generalization)."""
    # lazy: repro.steady.ondemand imports this module
    from .ondemand import device_hardware_model

    return device_hardware_model("paxos", device)


def paxos_models(role: PaxosRole = PaxosRole.ACCEPTOR) -> Dict[str, SteadyModel]:
    """The Figure 3(b) curve set for one role."""
    return {
        "libpaxos": libpaxos_model(role),
        "dpdk": dpdk_model(role),
        "p4xos": p4xos_in_server_model(role),
        "p4xos-standalone": p4xos_standalone_model(role),
    }
