"""Analytic steady-state model of the leaf-spine fabric's uplinks.

The DES builds every ToR→spine / spine→ToR uplink as a FIFO output queue
(:class:`repro.net.link.Link` with ``queueing=True``) at
``bandwidth / oversubscription`` effective bandwidth.  At a rate-constant
offered load each direction is an M/D/1 station — deterministic service
(fixed serialization time) fed by many independent constant-rate clients —
so the steady fast path can describe a cross-rack flow without replaying
events: each uplink traversal costs propagation + serialization + the
utilization-scaled mean FIFO wait of :func:`repro.net.link.fifo_wait_us`.

A request/response round trip between racks crosses four uplink
directions — client-rack up, host-rack down (the request), host-rack up,
client-rack down (the response) — so the analytic cross-rack latency adder
is the sum of four :meth:`FabricUplinkModel.crossing_us` terms, one per
direction at that direction's own offered load.  The per-direction loads
are exactly the cross-rack subset the spine would see in the DES (the
transit identity ``sum(ToRs) − spine``), derived from the spec's client
and host rack assignments instead of measured from counters.

Validity envelope: the M/D/1 wait and the fluid throughput cap are
accurate while every uplink direction stays comfortably below saturation
(utilization ≲ 0.7) and cross-rack packets are small relative to the
uplink's effective bandwidth — the regime every registered fabric scenario
operates in.  Near saturation the wait term grows without bound and the
cap becomes a crude bottleneck scaling; ``scenarios.validate_fastpath`` is
the gate that keeps a drifting model from silently substituting for DES.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.link import fifo_wait_us, serialization_time_us

#: Nominal wire size (bytes) of a cross-rack KVS packet for the uplink
#: utilization/queueing terms.  ETC requests are ``48 + key`` bytes and
#: the value-size CDF keeps most responses under a few hundred bytes, so
#: serialization on a multi-gigabit effective uplink is ~0.1 us against a
#: 5 us propagation — the model is insensitive to this constant until an
#: uplink direction approaches saturation, which the tolerance gate
#: excludes anyway.
NOMINAL_KVS_PACKET_BYTES = 128.0


@dataclass(frozen=True)
class FabricUplinkModel:
    """One uplink direction's analytic parameters (all directions of a
    declared fabric share them — the spec declares one ``UplinkSpec``)."""

    latency_us: float
    effective_bps: float
    packet_bytes: float = NOMINAL_KVS_PACKET_BYTES

    @property
    def serialization_us(self) -> float:
        """Serialization of one nominal packet at effective bandwidth."""
        return serialization_time_us(self.packet_bytes, self.effective_bps)

    @property
    def capacity_pps(self) -> float:
        """Nominal-packet saturation rate of one uplink direction."""
        return self.effective_bps / (self.packet_bytes * 8.0)

    def utilization(self, offered_pps: float) -> float:
        """``rho`` of one direction at a rate-constant offered load."""
        return offered_pps / self.capacity_pps if self.capacity_pps else 0.0

    def wait_us(self, offered_pps: float) -> float:
        """Mean M/D/1 FIFO wait of one direction at ``offered_pps``."""
        return fifo_wait_us(offered_pps, self.packet_bytes, self.effective_bps)

    def crossing_us(self, offered_pps: float) -> float:
        """One traversal of this direction: propagation + serialization +
        the mean queueing wait at the direction's offered load."""
        return self.latency_us + self.serialization_us + self.wait_us(offered_pps)

    def throughput_factor(self, offered_pps: float) -> float:
        """Fluid cap: the fraction of a flow this direction can carry
        (1.0 below saturation, proportional scaling above)."""
        if offered_pps <= self.capacity_pps:
            return 1.0
        return self.capacity_pps / offered_pps
