"""Steady-state DNS models — the Figure 3(c) series.

NSD software (peaks at 956K req/s drawing ~2× Emu's power), Emu DNS in a
server (~48W nearly flat), and Emu standalone.  §4.4: "less than 200Kpps
are enough for the [software] power consumption to exceed the hardware
implementation."
"""

from __future__ import annotations

from typing import Dict

from .. import calibration as cal
from ..hw.fpga import PlatformMode, make_emu_dns_fpga
from .base import HardwareCardModel, SoftwareCurveModel, SteadyModel


def nsd_model() -> SoftwareCurveModel:
    """NSD on the i7 (§4.4)."""
    return SoftwareCurveModel(
        name="NSD (SW)",
        capacity_pps=cal.NSD_CAPACITY_PPS,
        idle_w=cal.I7_IDLE_W,
        peak_w=cal.NSD_PEAK_W,
        alpha=cal.NSD_POWER_ALPHA,
        latency_us=cal.NSD_MEDIAN_US,
    )


def emu_in_server_model() -> HardwareCardModel:
    """Emu DNS on NetFPGA inside the i7 host (§4.4: ~48W)."""
    card = make_emu_dns_fpga(mode=PlatformMode.IN_SERVER)
    return HardwareCardModel(
        name="Emu (HW)",
        capacity_pps=cal.EMU_DNS_CAPACITY_PPS,
        card_power_w=card.power_w,
        card_dynamic_max_w=cal.EMU_DYNAMIC_MAX_W,
        host_idle_w=cal.I7_IDLE_NO_NIC_W,
        latency_us=cal.EMU_DNS_MEDIAN_US,
    )


def emu_standalone_model() -> HardwareCardModel:
    """Emu DNS standalone ("Standalone" in Figure 3(c))."""
    card = make_emu_dns_fpga(mode=PlatformMode.STANDALONE)
    return HardwareCardModel(
        name="Emu standalone",
        capacity_pps=cal.EMU_DNS_CAPACITY_PPS,
        card_power_w=card.power_w,
        card_dynamic_max_w=cal.EMU_DYNAMIC_MAX_W,
        host_idle_w=0.0,
        latency_us=cal.EMU_DNS_MEDIAN_US,
    )


def dns_hardware_model(device: str = "netfpga-sume") -> HardwareCardModel:
    """The DNS hardware curve on a named offload device — Emu on the
    default NetFPGA, the device's own power figures otherwise (the per-
    device Figure 3(c) generalization)."""
    # lazy: repro.steady.ondemand imports this module
    from .ondemand import device_hardware_model

    return device_hardware_model("dns", device)


def dns_models() -> Dict[str, SteadyModel]:
    """The Figure 3(c) curve set."""
    return {
        "nsd": nsd_model(),
        "emu": emu_in_server_model(),
        "emu-standalone": emu_standalone_model(),
    }
