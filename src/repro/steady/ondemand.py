"""Steady-state on-demand curves — the Figure 5 series.

An :class:`OnDemandModel` composes a software model, a hardware model, and
a shift threshold (the controller's shift-up rate): below the threshold the
workload runs in software with the card held in its §9.2 low-power
configuration (memories in reset, logic clock-gated); at and above it, the
workload runs in hardware.  "At low utilization power consumption is
derived from the properties of the software-based system.  As utilization
increases, processing is shifted to the network, and the power consumption
changes little with utilization."
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.fpga import PlatformMode, make_emu_dns_fpga, make_lake_fpga, make_p4xos_fpga
from .base import SteadyModel
from .dns import emu_in_server_model, nsd_model
from .kvs import lake_in_server_model, memcached_model
from .paxos import PaxosRole, libpaxos_model, p4xos_in_server_model


def _gated_card_power_w(design: str) -> float:
    """Card power in the §9.2 standby configuration."""
    if design == "lake":
        card = make_lake_fpga(mode=PlatformMode.IN_SERVER)
        card.clock_gate_all_logic()
        card.reset_memories()
    elif design == "p4xos":
        card = make_p4xos_fpga(mode=PlatformMode.IN_SERVER)
        card.clock_gate_all_logic()
    elif design == "emu-dns":
        card = make_emu_dns_fpga(mode=PlatformMode.IN_SERVER)
        card.clock_gate_all_logic()
    else:
        raise ConfigurationError(f"unknown design {design!r}")
    return card.power_w()


class OnDemandModel(SteadyModel):
    """Power of a workload managed by in-network computing on demand."""

    def __init__(
        self,
        name: str,
        software: SteadyModel,
        hardware: SteadyModel,
        shift_threshold_pps: float,
        standby_card_w: float,
        software_has_nic: bool = True,
    ):
        if shift_threshold_pps <= 0:
            raise ConfigurationError("shift threshold must be positive")
        super().__init__(name, capacity_pps=hardware.capacity_pps)
        self.software = software
        self.hardware = hardware
        self.shift_threshold_pps = shift_threshold_pps
        self.standby_card_w = standby_card_w
        self.software_has_nic = software_has_nic

    def in_hardware(self, offered_pps: float) -> bool:
        return offered_pps >= self.shift_threshold_pps

    def power_at(self, offered_pps: float) -> float:
        if self.in_hardware(offered_pps):
            return self.hardware.power_at(offered_pps)
        # Software phase.  The card replaces the NIC (LaKe/Emu setups), so
        # the software-model power minus its NIC share plus the standby
        # card; for P4xos (separate card) the NIC stays.
        power = self.software.power_at(offered_pps)
        if self.software_has_nic:
            power -= cal.NIC_MELLANOX_CX311A_IDLE_W
        return power + self.standby_card_w

    def latency_at(self, offered_pps: float) -> float:
        model = self.hardware if self.in_hardware(offered_pps) else self.software
        return model.latency_at(offered_pps)

    def base_latency_us(self) -> float:
        return self.software.base_latency_us()

    def saving_vs_software_w(self, offered_pps: float) -> float:
        """How much on-demand saves over software-only at this load (§1:
        "saves up to 50% of the power compared with software-based
        solutions" at high load)."""
        return self.software.power_at(offered_pps) - self.power_at(offered_pps)


def make_ondemand_model(app: str) -> OnDemandModel:
    """On-demand model for one of the three applications, with the §4
    crossover as the shift threshold."""
    if app == "kvs":
        return OnDemandModel(
            name="KVS (On demand)",
            software=memcached_model(),
            hardware=lake_in_server_model(),
            shift_threshold_pps=cal.NETCTL_KVS_UP_PPS,
            standby_card_w=_gated_card_power_w("lake"),
        )
    if app == "paxos":
        return OnDemandModel(
            name="Paxos (On demand)",
            software=libpaxos_model(PaxosRole.LEADER),
            hardware=p4xos_in_server_model(PaxosRole.LEADER),
            shift_threshold_pps=cal.NETCTL_PAXOS_UP_PPS,
            standby_card_w=_gated_card_power_w("p4xos"),
        )
    if app == "dns":
        return OnDemandModel(
            name="DNS (On demand)",
            software=nsd_model(),
            hardware=emu_in_server_model(),
            shift_threshold_pps=cal.NETCTL_DNS_UP_PPS,
            standby_card_w=_gated_card_power_w("emu-dns"),
        )
    raise ConfigurationError(f"unknown app {app!r}; choose kvs, paxos, or dns")


def ondemand_models() -> Dict[str, OnDemandModel]:
    """The Figure 5 curve set."""
    return {app: make_ondemand_model(app) for app in ("kvs", "paxos", "dns")}
