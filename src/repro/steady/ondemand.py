"""Steady-state on-demand curves — the Figure 5 series.

An :class:`OnDemandModel` composes a software model, a hardware model, and
a shift threshold (the controller's shift-up rate): below the threshold the
workload runs in software with the card held in its §9.2 low-power
configuration (memories in reset, logic clock-gated); at and above it, the
workload runs in hardware.  "At low utilization power consumption is
derived from the properties of the software-based system.  As utilization
increases, processing is shifted to the network, and the power consumption
changes little with utilization."
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.device import DEFAULT_DEVICE_KIND, get_device
from .base import HardwareCardModel, SteadyModel, find_crossover
from .dns import emu_in_server_model, nsd_model
from .kvs import lake_in_server_model, memcached_model
from .paxos import PaxosRole, libpaxos_model, p4xos_in_server_model

#: App → software-side model factory (the curve an offload competes with).
_SOFTWARE_MODELS = {
    "kvs": memcached_model,
    "paxos": lambda: libpaxos_model(PaxosRole.LEADER),
    "dns": nsd_model,
}

#: App → the paper's NetFPGA in-server hardware model (Figure 3).
_NETFPGA_HARDWARE_MODELS = {
    "kvs": lake_in_server_model,
    "paxos": lambda: p4xos_in_server_model(PaxosRole.LEADER),
    "dns": emu_in_server_model,
}

#: App → pipeline latency on an offload device (§5.3/§3.3/§9.5 figures).
_HW_LATENCY_US = {
    "kvs": cal.LAKE_L1_HIT_US,
    "dns": cal.EMU_DNS_MEDIAN_US,
    "paxos": cal.P4XOS_FPGA_PIPELINE_US,
}


def device_software_model(app: str) -> SteadyModel:
    """The software curve an offload device competes with for ``app``."""
    factory = _SOFTWARE_MODELS.get(app)
    if factory is None:
        raise ConfigurationError(f"unknown app {app!r}; choose kvs, paxos, or dns")
    return factory()


def device_hardware_model(
    app: str, device: str = DEFAULT_DEVICE_KIND
) -> HardwareCardModel:
    """Figure-3-style in-server hardware curve for ``app`` on ``device``.

    The default device reproduces the paper's NetFPGA models exactly; any
    other registered offload profile yields the same curve shape built from
    *its* power figures (host idle + card idle + utilization-scaled
    dynamic adder), which is what makes per-device analytic crossovers
    possible.
    """
    if app not in _NETFPGA_HARDWARE_MODELS:
        raise ConfigurationError(f"unknown app {app!r}; choose kvs, paxos, or dns")
    profile = get_device(device)
    profile.validate_app(app, f"steady {app} model")
    if profile.kind == DEFAULT_DEVICE_KIND:
        return _NETFPGA_HARDWARE_MODELS[app]()
    if not profile.is_offload:
        raise ConfigurationError(
            "a NIC-only host has no hardware curve (nothing to shift to)"
        )
    card = profile.make_card(app)
    return HardwareCardModel(
        name=f"{app} on {profile.kind} (HW)",
        capacity_pps=profile.capacity_pps(app),
        card_power_w=card.power_w,
        card_dynamic_max_w=profile.dynamic_max_w(app),
        host_idle_w=cal.I7_IDLE_NO_NIC_W,
        latency_us=_HW_LATENCY_US[app],
    )


def device_crossover_pps(
    app: str, device: str = DEFAULT_DEVICE_KIND
) -> Optional[float]:
    """The §8 tipping point of ``app`` on ``device``: the lowest rate where
    this device's hardware curve beats the software curve on power."""
    return find_crossover(
        device_software_model(app), device_hardware_model(app, device)
    )


class OnDemandModel(SteadyModel):
    """Power of a workload managed by in-network computing on demand."""

    def __init__(
        self,
        name: str,
        software: SteadyModel,
        hardware: SteadyModel,
        shift_threshold_pps: float,
        standby_card_w: float,
        software_has_nic: bool = True,
    ):
        if shift_threshold_pps <= 0:
            raise ConfigurationError("shift threshold must be positive")
        super().__init__(name, capacity_pps=hardware.capacity_pps)
        self.software = software
        self.hardware = hardware
        self.shift_threshold_pps = shift_threshold_pps
        self.standby_card_w = standby_card_w
        self.software_has_nic = software_has_nic

    def in_hardware(self, offered_pps: float) -> bool:
        return offered_pps >= self.shift_threshold_pps

    def power_at(self, offered_pps: float) -> float:
        if self.in_hardware(offered_pps):
            return self.hardware.power_at(offered_pps)
        # Software phase.  The card replaces the NIC (LaKe/Emu setups), so
        # the software-model power minus its NIC share plus the standby
        # card; for P4xos (separate card) the NIC stays.
        power = self.software.power_at(offered_pps)
        if self.software_has_nic:
            power -= cal.NIC_MELLANOX_CX311A_IDLE_W
        return power + self.standby_card_w

    def latency_at(self, offered_pps: float) -> float:
        model = self.hardware if self.in_hardware(offered_pps) else self.software
        return model.latency_at(offered_pps)

    def base_latency_us(self) -> float:
        return self.software.base_latency_us()

    def saving_vs_software_w(self, offered_pps: float) -> float:
        """How much on-demand saves over software-only at this load (§1:
        "saves up to 50% of the power compared with software-based
        solutions" at high load)."""
        return self.software.power_at(offered_pps) - self.power_at(offered_pps)


_ONDEMAND_NAMES = {"kvs": "KVS", "paxos": "Paxos", "dns": "DNS"}


def make_ondemand_model(
    app: str, device: str = DEFAULT_DEVICE_KIND
) -> OnDemandModel:
    """On-demand model for one of the three applications on a named offload
    device: below the device's shift-up threshold (the §4 crossover for the
    NetFPGA, the device's analytic crossover otherwise) the workload runs
    in software with the card in *this device's* standby configuration."""
    if app not in _ONDEMAND_NAMES:
        raise ConfigurationError(f"unknown app {app!r}; choose kvs, paxos, or dns")
    profile = get_device(device)
    profile.validate_app(app, f"on-demand {app} model")
    if not profile.is_offload:
        raise ConfigurationError(
            "a NIC-only host has no on-demand model (nothing to shift to)"
        )
    suffix = "" if profile.kind == DEFAULT_DEVICE_KIND else f", {profile.kind}"
    return OnDemandModel(
        name=f"{_ONDEMAND_NAMES[app]} (On demand{suffix})",
        software=device_software_model(app),
        hardware=device_hardware_model(app, profile.kind),
        shift_threshold_pps=profile.netctl_thresholds_pps(app)[0],
        standby_card_w=profile.standby_power_w(app),
    )


def ondemand_models() -> Dict[str, OnDemandModel]:
    """The Figure 5 curve set."""
    return {app: make_ondemand_model(app) for app in ("kvs", "paxos", "dns")}
