"""Shared application machinery.

:class:`SoftwareService` is the queueing skeleton of every software server
in the package (memcached, libpaxos, NSD): a FIFO request queue drained at
the service's calibrated capacity, with busy-time accounting feeding the
host's CPU model so power and the host controller see the load.

:class:`HardwareService` is the counterpart for on-card applications: a
fixed pipeline latency (plus optional memory access components), a line-rate
capacity, and utilization reporting into the FPGA card model's dynamic
power.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ConfigurationError
from ..net.packet import Packet, make_packet, release_packet
from ..sim import FifoQueue, Simulator
from ..units import SEC, msec


class UtilizationTracker:
    """Accumulates busy time and reports a windowed utilization."""

    def __init__(self, sim: Simulator, window_us: float = msec(100.0)):
        self._sim = sim
        self.window_us = window_us
        self._busy_us = 0.0
        self._window_start = sim.now
        self.utilization = 0.0

    def add_busy(self, duration_us: float) -> None:
        self._busy_us += duration_us

    def roll(self) -> float:
        """Close the current window and return its utilization."""
        now = self._sim.now
        elapsed = now - self._window_start
        if elapsed > 0:
            self.utilization = min(1.0, self._busy_us / elapsed)
        self._busy_us = 0.0
        self._window_start = now
        return self.utilization


class SoftwareService:
    """A software network service: single logical queue, fixed capacity.

    Subclasses implement :meth:`handle_request` which receives the request
    packet and returns a reply payload (or ``None`` for no reply).  The
    service:

    * serves requests at ``capacity_pps`` (service time = 1/capacity);
    * accounts busy time into the host's :class:`CpuAccount` under
      ``app_name`` over ``cores`` cores;
    * stamps replies and sends them back toward ``packet.src``.

    ``active`` gates processing: when a workload has been shifted to the
    network, the software copy sits idle (its queue is bypassed upstream by
    the classifier, but stray packets are still served — the paper's LaKe
    miss path relies on that).
    """

    def __init__(
        self,
        sim: Simulator,
        server,
        app_name: str,
        capacity_pps: float,
        cores: float,
        extra_latency_us: float = 0.0,
        util_window_us: float = msec(100.0),
    ):
        if capacity_pps <= 0:
            raise ConfigurationError("capacity_pps must be positive")
        if cores <= 0:
            raise ConfigurationError("cores must be positive")
        if extra_latency_us < 0:
            raise ConfigurationError("extra_latency_us must be >= 0")
        self.sim = sim
        self.server = server
        self.app_name = app_name
        self.capacity_pps = capacity_pps
        self.cores = cores
        #: pipeline (non-occupancy) latency of the software stack: kernel
        #: UDP, wakeups, syscalls.  Calibrated per application in
        #: repro.calibration (e.g. 14µs memcached, 200µs libpaxos leader).
        self.extra_latency_us = extra_latency_us
        self.queue = FifoQueue(sim, capacity=4096, name=f"{app_name}.q")
        self.util = UtilizationTracker(sim, util_window_us)
        self._busy = False
        self.served = 0
        self.rx = 0
        self._util_timer = sim.call_every(
            util_window_us, self._update_cpu_load, name=f"{app_name}.util"
        )
        # start with zero load registered so the controller sees the app
        server.cpu.set_load(app_name, cores, 0.0)

    # -- configuration -------------------------------------------------------

    @property
    def service_time_us(self) -> float:
        return SEC / self.capacity_pps

    # -- packet path -----------------------------------------------------------

    def offer(self, packet: Packet) -> None:
        """Entry point: queue a request (drop-tail on overload)."""
        self.rx += 1
        if self.queue.push(packet):
            if not self._busy:
                self._start_service()
        else:
            release_packet(packet)  # drop-tail: nothing holds it now

    def _start_service(self) -> None:
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        duration = self.service_time_us
        self.util.add_busy(duration)
        self.sim.schedule_call(duration, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.served += 1
        reply = self.handle_request(packet)
        if reply is not None:
            self._send_reply(packet, reply)
        # handle_request implementations consume the payload and drop the
        # shell; recycle it for the next request/reply
        release_packet(packet)
        self._start_service()

    def _send_reply(self, request: Packet, payload) -> None:
        reply = make_packet(
            src=self.server.name,
            dst=request.src,
            traffic_class=request.traffic_class,
            payload=payload,
            size_bytes=request.size_bytes,
            now=request.created_us,  # preserve for end-to-end latency
            dport=request.dport,
        )
        self.transmit(reply)

    def transmit(self, packet: Packet) -> None:
        """Send a packet after the software stack's pipeline latency."""
        if self.extra_latency_us > 0:
            self.sim.schedule_call(
                self.extra_latency_us, self.server.send, packet
            )
        else:
            self.server.send(packet)

    # -- CPU/power feedback ------------------------------------------------------

    def _update_cpu_load(self) -> None:
        utilization = self.util.roll()
        self.server.cpu.set_load(self.app_name, self.cores, utilization)

    def stop(self) -> None:
        self._util_timer.cancel()
        self.server.cpu.clear_load(self.app_name)

    # -- subclass hook -------------------------------------------------------

    def handle_request(self, packet: Packet):  # pragma: no cover - abstract
        raise NotImplementedError


class HardwareService:
    """An on-card application: pipeline latency, line-rate capacity.

    Hardware designs are fully pipelined (§9.5), so there is no queueing
    below capacity; requests complete after ``pipeline_latency_us`` (which
    subclasses may vary per request, e.g. LaKe's cache levels).  Utilization
    is tracked over a window and pushed into the card model so its dynamic
    power follows load.
    """

    def __init__(
        self,
        sim: Simulator,
        card,
        node,
        app_name: str,
        capacity_pps: float,
        util_window_us: float = msec(100.0),
    ):
        if capacity_pps <= 0:
            raise ConfigurationError("capacity_pps must be positive")
        self.sim = sim
        self.card = card
        self.node = node  # network node used to send replies
        self.app_name = app_name
        self.capacity_pps = capacity_pps
        self.served = 0
        self.rx = 0
        self.dropped_overload = 0
        self._window_count = 0
        self._window_us = util_window_us
        self._util_timer = sim.call_every(
            util_window_us, self._update_utilization, name=f"{app_name}.hw-util"
        )

    def offer(self, packet: Packet) -> None:
        """Entry point from the classifier's hardware path."""
        self.rx += 1
        # Line-rate policing: beyond capacity the input queues overflow.
        window_capacity = self.capacity_pps * self._window_us / SEC
        if self._window_count >= window_capacity:
            self.dropped_overload += 1
            release_packet(packet)  # policed drop: nothing holds it now
            return
        self._window_count += 1
        latency = self.request_latency_us(packet)
        self.sim.schedule_call(latency, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.served += 1
        reply = self.handle_request(packet)
        if reply is not None:
            self._send_reply(packet, reply)
        release_packet(packet)

    def _send_reply(self, request: Packet, payload) -> None:
        reply = make_packet(
            src=self.node.name,
            dst=request.src,
            traffic_class=request.traffic_class,
            payload=payload,
            size_bytes=request.size_bytes,
            now=request.created_us,
            dport=request.dport,
        )
        self.node.send(reply)

    def _update_utilization(self) -> None:
        window_capacity = self.capacity_pps * self._window_us / SEC
        utilization = min(1.0, self._window_count / window_capacity)
        self.card.set_utilization(utilization)
        self._window_count = 0

    def stop(self) -> None:
        self._util_timer.cancel()
        self.card.set_utilization(0.0)

    # -- subclass hooks -----------------------------------------------------

    def request_latency_us(self, packet: Packet) -> float:  # pragma: no cover
        raise NotImplementedError

    def handle_request(self, packet: Packet):  # pragma: no cover - abstract
        raise NotImplementedError
