"""The paper's three case-study applications (§3).

Each application ships a **software** implementation (runs on a
:class:`repro.host.Server`, consumes CPU, replies through the NIC path) and
a **hardware** implementation (runs on a :class:`repro.hw.NetFpgaSume`
model behind a packet classifier, with calibrated pipeline latencies):

* :mod:`repro.apps.kvs`   — memcached (software) and LaKe (hardware), §3.1.
* :mod:`repro.apps.paxos` — libpaxos / DPDK (software) and P4xos (hardware), §3.2.
* :mod:`repro.apps.dns`   — NSD (software) and Emu DNS (hardware), §3.3.
"""
