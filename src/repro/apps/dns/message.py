"""DNS message model (the subset Emu DNS supports, §3.3).

Non-recursive A-record queries only: name → IPv4.  Names are validated to
the DNS label rules that matter for a resolution table (length limits,
non-empty labels).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...errors import ProtocolError

MAX_NAME_LENGTH = 253
MAX_LABEL_LENGTH = 63


def validate_name(name: str) -> str:
    """Normalize and validate a DNS name; returns the lowercase form."""
    if not name:
        raise ProtocolError("empty DNS name")
    normalized = name.rstrip(".").lower()
    if len(normalized) > MAX_NAME_LENGTH:
        raise ProtocolError(f"name exceeds {MAX_NAME_LENGTH} bytes: {name!r}")
    for label in normalized.split("."):
        if not label:
            raise ProtocolError(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise ProtocolError(f"label exceeds {MAX_LABEL_LENGTH} bytes: {label!r}")
    return normalized


class DnsRcode(enum.Enum):
    NOERROR = 0
    NXDOMAIN = 3     # "cannot resolve the name" (§3.3)
    NOTIMP = 4       # e.g. recursive queries, unsupported types


@dataclass(frozen=True)
class ARecord:
    """An address record in the zone."""

    name: str
    ipv4: str
    ttl: int = 300

    def __post_init__(self):
        object.__setattr__(self, "name", validate_name(self.name))
        parts = self.ipv4.split(".")
        if len(parts) != 4 or not all(p.isdigit() and 0 <= int(p) <= 255 for p in parts):
            raise ProtocolError(f"invalid IPv4 address {self.ipv4!r}")
        if self.ttl < 0:
            raise ProtocolError("negative TTL")


@dataclass(frozen=True)
class DnsQuery:
    """A client query."""

    name: str
    query_id: int = 0
    recursive: bool = False

    def __post_init__(self):
        object.__setattr__(self, "name", validate_name(self.name))

    @property
    def size_bytes(self) -> int:
        return 40 + len(self.name)


@dataclass(frozen=True)
class DnsResponse:
    """A server response."""

    rcode: DnsRcode
    name: str
    record: Optional[ARecord] = None
    query_id: int = 0

    def __post_init__(self):
        if self.rcode is DnsRcode.NOERROR and self.record is None:
            raise ProtocolError("NOERROR response requires a record")
        if self.rcode is not DnsRcode.NOERROR and self.record is not None:
            raise ProtocolError(f"{self.rcode.name} must not carry a record")
