"""DNS client — open-loop query generator."""

from __future__ import annotations

import itertools
from typing import Callable

from ...errors import ConfigurationError
from ...net.packet import Packet, TrafficClass, make_packet, release_packet
from ...net.node import Node
from ...sim import LatencyRecorder, Simulator, TimeSeries
from ...units import SEC
from .message import DnsQuery, DnsResponse, DnsRcode

DNS_PORT = 53


class DnsClient(Node):
    """Sends DNS queries at a controlled rate; records replies."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        server_name: str,
        name_sampler: Callable[[], str],
        rate_pps: float = 0.0,
        rng=None,
    ):
        super().__init__(sim, name)
        self.server_name = server_name
        self.name_sampler = name_sampler
        self._rng = rng
        self._ids = itertools.count(1)
        self.latency = LatencyRecorder(f"{name}.latency")
        #: (response time, latency) samples for timeline plots
        self.latency_series = TimeSeries(f"{name}.latency-series")
        #: response timestamps for bucketed throughput series
        self.response_times_us = []
        self.responses = 0
        self.resolved = 0
        self.nxdomain = 0
        self._send_timer = None
        self._rate_pps = 0.0
        if rate_pps > 0:
            self.set_rate(rate_pps)

    def set_rate(self, rate_pps: float) -> None:
        if rate_pps < 0:
            raise ConfigurationError("rate must be >= 0")
        if self._send_timer is not None:
            self._send_timer.cancel()
            self._send_timer = None
        self._rate_pps = rate_pps
        if rate_pps > 0:
            interval = SEC / rate_pps
            jitter = 0.3 if self._rng is not None else 0.0
            # hot path: Event-free periodic loop (same ticks, same draws)
            self._send_timer = self.sim.call_every_fast(
                interval, self._send_one, jitter=jitter, rng=self._rng
            )

    @property
    def rate_pps(self) -> float:
        return self._rate_pps

    def stop(self) -> None:
        self.set_rate(0.0)

    def _send_one(self) -> None:
        query = DnsQuery(name=self.name_sampler(), query_id=next(self._ids))
        packet = make_packet(
            src=self.name,
            dst=self.server_name,
            traffic_class=TrafficClass.DNS,
            payload=query,
            now=self.sim.now,
            dport=DNS_PORT,
            size_bytes=query.size_bytes,
        )
        self.send(packet)

    def receive(self, packet: Packet) -> None:
        super().receive(packet)
        response = packet.payload
        if not isinstance(response, DnsResponse):
            return
        self.responses += 1
        age = packet.age_us(self.sim.now)
        self.latency.record(age)
        self.latency_series.record(self.sim.now, age)
        self.response_times_us.append(self.sim.now)
        if response.rcode is DnsRcode.NOERROR:
            self.resolved += 1
        elif response.rcode is DnsRcode.NXDOMAIN:
            self.nxdomain += 1
        # the reply terminates here; recycle its shell
        release_packet(packet)
