"""Software NSD — the authoritative name server baseline (§3.3, [62]).

Capacity 956K requests/s on the i7 (§4.4); latency ~70µs median, which is
the ×70 the paper quotes Emu DNS improving on.
"""

from __future__ import annotations

from typing import Optional

from ... import calibration as cal
from ...net.packet import Packet
from ...sim import Simulator
from ..common import SoftwareService
from .message import DnsQuery, DnsResponse
from .zone import ZoneTable


class SoftwareNsd(SoftwareService):
    """NSD running on a host server."""

    def __init__(
        self,
        sim: Simulator,
        server,
        zone: Optional[ZoneTable] = None,
        capacity_pps: float = cal.NSD_CAPACITY_PPS,
        cores: Optional[float] = None,
        app_name: str = "nsd",
    ):
        super().__init__(
            sim,
            server,
            app_name,
            capacity_pps=capacity_pps,
            cores=cores if cores is not None else float(server.cpu.total_cores),
            extra_latency_us=cal.NSD_STACK_US,
        )
        self.zone = zone if zone is not None else ZoneTable(name=f"{app_name}.zone")

    def handle_request(self, packet: Packet) -> DnsResponse:
        query = packet.payload
        if not isinstance(query, DnsQuery):
            raise TypeError(f"NSD got non-DNS payload: {query!r}")
        return self.zone.resolve(query)
