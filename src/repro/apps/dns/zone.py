"""The resolution table shared by NSD and Emu DNS."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ...errors import ConfigurationError
from .message import ARecord, DnsQuery, DnsRcode, DnsResponse, validate_name


class ZoneTable:
    """An authoritative name → IPv4 resolution table.

    Emu DNS keeps this table in on-chip memory, which bounds its size
    (§5.3's small-memory trade-off); the software NSD table is effectively
    unbounded.  ``capacity`` models that difference.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "zone"):
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._records: Dict[str, ARecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return validate_name(name) in self._records

    def add(self, record: ARecord) -> None:
        if (
            self.capacity is not None
            and record.name not in self._records
            and len(self._records) >= self.capacity
        ):
            raise ConfigurationError(
                f"zone {self.name!r} full ({self.capacity} records)"
            )
        self._records[record.name] = record

    def add_many(self, records: Iterable[ARecord]) -> None:
        for record in records:
            self.add(record)

    def remove(self, name: str) -> bool:
        return self._records.pop(validate_name(name), None) is not None

    def lookup(self, name: str) -> Optional[ARecord]:
        return self._records.get(validate_name(name))

    def resolve(self, query: DnsQuery) -> DnsResponse:
        """Authoritative, non-recursive resolution (§3.3)."""
        if query.recursive:
            return DnsResponse(DnsRcode.NOTIMP, query.name, query_id=query.query_id)
        record = self._records.get(query.name)
        if record is None:
            return DnsResponse(DnsRcode.NXDOMAIN, query.name, query_id=query.query_id)
        return DnsResponse(
            DnsRcode.NOERROR, query.name, record=record, query_id=query.query_id
        )
