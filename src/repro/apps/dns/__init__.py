"""DNS: software NSD and hardware Emu DNS (§3.3).

Emu DNS "implements a subset of DNS functionality, supporting non-recursive
queries … resolution queries from names to IPv4 addresses.  If the queried
name is absent from the resolution table, Emu DNS informs the client that
it cannot resolve the name."  Both implementations here share the zone
table and query logic; they differ in where they run and what they cost.
"""

from .message import DnsQuery, DnsResponse, DnsRcode, ARecord
from .zone import ZoneTable
from .nsd import SoftwareNsd
from .emu import EmuDns
from .client import DnsClient

__all__ = [
    "DnsQuery",
    "DnsResponse",
    "DnsRcode",
    "ARecord",
    "ZoneTable",
    "SoftwareNsd",
    "EmuDns",
    "DnsClient",
]
