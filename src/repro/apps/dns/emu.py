"""Emu DNS — the hardware DNS server (§3.3).

Compiled from C# via Kiwi/Emu to the NetFPGA; non-pipelined, which is why
its peak (~1M req/s) is comparable to the software's rather than at line
rate (§4.4).  Latency is ~1µs (the ×70 improvement over NSD) with the
±100ns pipeline jitter of §9.5.  A packet classifier (added by the paper)
lets the card double as a NIC, and gives it the same on-demand shift hooks
as LaKe.
"""

from __future__ import annotations

import random
from typing import Optional

from ... import calibration as cal
from ...hw.fpga import NetFpgaSume
from ...net.packet import Packet
from ...sim import Simulator
from ...sim.rng import RngStreams
from ..common import HardwareService
from .message import DnsQuery, DnsRcode, DnsResponse
from .zone import ZoneTable

#: Emu DNS keeps its resolution table in on-chip memory (§3.4); the bound
#: is of the same order as LaKe's on-chip value capacity (§5.3).
EMU_ZONE_CAPACITY = 4096

#: §9.2: "The biggest challenge would be supporting DNS queries that
#: require parsing deeper than the maximum supported depth" — data-plane
#: parsers unroll a fixed number of labels.
MAX_PARSE_LABELS = 8


class EmuDns(HardwareService):
    """The Emu DNS pipeline on a NetFPGA SUME card."""

    def __init__(
        self,
        sim: Simulator,
        card: NetFpgaSume,
        server,
        zone: Optional[ZoneTable] = None,
        rng: Optional[random.Random] = None,
        fallback=None,
        max_parse_labels: int = MAX_PARSE_LABELS,
        app_name: str = "emu-dns",
        capacity_pps: Optional[float] = None,
    ):
        # capacity_pps overrides the §4.4 Emu figure — the device layer
        # passes a SmartNIC profile's own capacity; None keeps Emu's.
        super().__init__(
            sim,
            card,
            server,
            app_name,
            capacity_pps=(
                capacity_pps if capacity_pps is not None
                else cal.EMU_DNS_CAPACITY_PPS
            ),
        )
        self.zone = (
            zone
            if zone is not None
            else ZoneTable(capacity=EMU_ZONE_CAPACITY, name=f"{app_name}.zone")
        )
        # Namespaced per host (see LakeKvs): replicas built without an
        # explicit rng must draw independent jitter streams.  Keyed by node
        # name for reproducibility, so distinct replicas need distinct
        # server names (as any shared topology already requires).
        self._rng = rng or RngStreams(0xD45).get(
            f"{getattr(server, 'name', app_name)}.{app_name}.jitter"
        )
        self.enabled = False
        #: software server handling names deeper than the parser supports
        #: (§9.2: "in the worst case scenario, those queries could be
        #: treated as iterative requests"); None -> answer NOTIMP.
        self.fallback = fallback
        self.max_parse_labels = max_parse_labels
        self.deep_query_fallbacks = 0

    # -- on-demand shift hooks (§9.2: "Dynamically shifting DNS operation
    # from software to the network is much the same as shifting KVS") -------

    def enable(self) -> None:
        self.card.activate_all_logic()
        self.enabled = True

    def disable(self, power_save: bool = True) -> None:
        self.enabled = False
        self.card.set_utilization(0.0)
        if power_save:
            self.card.clock_gate_all_logic()

    # -- service --------------------------------------------------------------

    def request_latency_us(self, packet: Packet) -> float:
        query = packet.payload
        if isinstance(query, DnsQuery) and self._too_deep(query):
            # punted to the host: software service + stack latency
            return cal.NSD_MEDIAN_US
        return cal.EMU_DNS_MEDIAN_US + self._rng.uniform(
            -cal.FPGA_PIPELINE_JITTER_US, cal.FPGA_PIPELINE_JITTER_US
        )

    def _too_deep(self, query: DnsQuery) -> bool:
        return query.name.count(".") + 1 > self.max_parse_labels

    def handle_request(self, packet: Packet) -> DnsResponse:
        query = packet.payload
        if not isinstance(query, DnsQuery):
            raise TypeError(f"Emu DNS got non-DNS payload: {query!r}")
        if self._too_deep(query):
            # §9.2: deeper-than-parser names cannot be matched in the data
            # plane; hand them to software (or refuse if standalone)
            self.deep_query_fallbacks += 1
            if self.fallback is None:
                return DnsResponse(DnsRcode.NOTIMP, query.name, query_id=query.query_id)
            self.fallback.util.add_busy(self.fallback.service_time_us)
            return self.fallback.zone.resolve(query)
        return self.zone.resolve(query)
