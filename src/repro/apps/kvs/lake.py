"""LaKe — the layered hardware key-value store (§3.1).

Architecture reproduced from Figure 1: a packet classifier steers memcached
traffic into the LaKe pipeline; L1 is on-chip BRAM, L2 is on-card DRAM; a
query missing both layers is serviced by the host's software memcached over
DMA.  Latencies are the §5.3 measurements (1.4µs L1 hit, 1.67µs median L2
hit, 13.5µs median for a hardware miss).

On-demand semantics (§9.2): ``enable()`` starts hardware processing with
**cold caches** — "the triggering of a shift means that at first all memory
accesses will be a miss, and queries will continue to be forwarded to the
software, until the cache, both on and off chip, warms".  ``disable()``
returns processing to software and (optionally) holds the memories in reset
and clock-gates the logic for the §9.2 power-saving configuration.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ... import calibration as cal
from ...errors import ConfigurationError
from ...hw.fpga import NetFpgaSume
from ...net.packet import Packet
from ...sim import Simulator
from ...sim.rng import RngStreams
from ..common import HardwareService
from .protocol import KvsOp, KvsRequest, KvsResponse, KvsStatus
from .store import LruStore

#: L2 cache entries modeled.  The physical DRAM holds 33M value entries
#: (§5.3); our replayed workloads touch far fewer keys, and LruStore is
#: lazy, so using the physical figure is free.
L2_ENTRIES = cal.DRAM_VALUE_ENTRIES

#: PCIe/DMA + kernel + wakeup overhead of the miss path, chosen so that the
#: end-to-end hardware-miss median lands on §5.3's 13.5µs once the software
#: service time (~1µs at memcached's capacity) is added.
MISS_PATH_OVERHEAD_US = cal.LAKE_MISS_MEDIAN_US - cal.LAKE_L1_HIT_US - 1.0


def sample_latency(rng: random.Random, median_us: float, p99_us: float) -> float:
    """Lognormal latency with the given median and 99th percentile."""
    if p99_us < median_us:
        raise ConfigurationError("p99 must be >= median")
    if p99_us == median_us:
        return median_us
    sigma = math.log(p99_us / median_us) / 2.326  # z(0.99) ≈ 2.326
    return median_us * math.exp(sigma * rng.gauss(0.0, 1.0))


class LakeKvs(HardwareService):
    """The LaKe pipeline on a NetFPGA SUME card."""

    def __init__(
        self,
        sim: Simulator,
        card: NetFpgaSume,
        server,
        software,
        rng: Optional[random.Random] = None,
        l1_entries: int = cal.ONCHIP_VALUE_ENTRIES,
        l2_entries: int = L2_ENTRIES,
        app_name: str = "lake",
        capacity_pps: Optional[float] = None,
    ):
        # capacity_pps overrides the NetFPGA sizing — the device abstraction
        # layer passes a SmartNIC profile's own figure; None keeps the
        # LaKe-on-SUME computation from the card's PE modules (§5.2)
        if capacity_pps is None:
            pe_count = sum(1 for name in card.modules if name.startswith("pe"))
            capacity_pps = min(
                cal.LAKE_LINE_RATE_PPS, pe_count * cal.LAKE_PE_CAPACITY_PPS
            ) if pe_count else cal.LAKE_LINE_RATE_PPS
        super().__init__(
            sim, card, server, app_name, capacity_pps=capacity_pps
        )
        self.server = server
        self.software = software
        self.l1 = LruStore(l1_entries, name="lake.l1")
        self.l2 = LruStore(l2_entries, name="lake.l2") if card.dram is not None else None
        # Default stream namespaced by the host's node name: two cards built
        # without an explicit rng must NOT share a latency stream, or every
        # host in a rack jitters in lockstep and the aggregate tails collapse.
        # Keyed by name (not identity) so runs stay reproducible — distinct
        # hosts therefore need distinct server names, which any shared
        # topology already requires.
        self._rng = rng or RngStreams(0x1A4E).get(
            f"{getattr(server, 'name', app_name)}.{app_name}.latency"
        )
        self.enabled = False
        self.miss_forwards = 0

    # -- on-demand shift hooks (§9.2) ----------------------------------------

    def enable(self) -> None:
        """Start hardware processing: memories out of reset, logic active,
        caches cold."""
        self.card.activate_all_logic()
        self.card.activate_memories()
        self.l1.clear()
        if self.l2 is not None:
            self.l2.clear()
        self.enabled = True

    def disable(self, power_save: bool = True) -> None:
        """Return processing to software.  With ``power_save`` the card is
        put in the §9.2 low-power configuration (memories in reset, logic
        clock-gated); Figure 6's experiment runs with it off."""
        self.enabled = False
        self.card.set_utilization(0.0)
        if power_save:
            self.card.reset_memories()
            self.card.clock_gate_all_logic()

    # -- latency model -----------------------------------------------------------

    def request_latency_us(self, packet: Packet) -> float:
        request = packet.payload
        level = self._lookup_level(request)
        load = min(1.0, self.rx_rate_fraction())
        if level == "l1":
            return cal.LAKE_L1_HIT_US + self._rng.uniform(
                0.0, cal.FPGA_PIPELINE_JITTER_US
            )
        if level == "l2":
            # p99 widens from 1.9µs at low load to 3µs near line rate (§5.3)
            p99 = (
                cal.LAKE_L2_HIT_P99_LOW_LOAD_US
                + (cal.LAKE_L2_HIT_P99_FULL_LOAD_US - cal.LAKE_L2_HIT_P99_LOW_LOAD_US)
                * load
            )
            return sample_latency(self._rng, cal.LAKE_L2_HIT_MEDIAN_US, p99)
        # miss: pipeline + DMA + software service
        return sample_latency(
            self._rng, cal.LAKE_MISS_MEDIAN_US, cal.LAKE_MISS_P99_US
        )

    def rx_rate_fraction(self) -> float:
        """Crude utilization estimate used to widen tail latencies."""
        return self._window_count / max(1.0, self.capacity_pps * self._window_us / 1e6)

    def _lookup_level(self, request: KvsRequest) -> str:
        """Which layer will serve this request (peek, no stats side effects)."""
        if request.op is not KvsOp.GET:
            return "l1"  # SETs/DELETEs are absorbed by the pipeline
        if request.key in self.l1:
            return "l1"
        if self.l2 is not None and request.key in self.l2:
            return "l2"
        return "software"

    # -- request handling ------------------------------------------------------

    def handle_request(self, packet: Packet) -> Optional[KvsResponse]:
        request = packet.payload
        if not isinstance(request, KvsRequest):
            raise TypeError(f"LaKe got non-KVS payload: {request!r}")

        if request.op is KvsOp.SET:
            return self._handle_set(request)
        if request.op is KvsOp.DELETE:
            return self._handle_delete(request)
        return self._handle_get(request)

    def _handle_set(self, request: KvsRequest) -> KvsResponse:
        self.l1.set(request.key, request.value)
        if self.l2 is not None:
            self.l2.set(request.key, request.value)
        # Write-through: the software copy stays authoritative so a later
        # shift back to software needs no state transfer (§9.2: the
        # application "remains oblivious to the shift").
        self._software_execute(request)
        return KvsResponse(
            KvsStatus.STORED, request.key, request_id=request.request_id,
            served_by="l1",
        )

    def _handle_delete(self, request: KvsRequest) -> KvsResponse:
        self.l1.delete(request.key)
        if self.l2 is not None:
            self.l2.delete(request.key)
        response = self._software_execute(request)
        return KvsResponse(
            response.status, request.key, request_id=request.request_id,
            served_by="l1",
        )

    def _handle_get(self, request: KvsRequest) -> KvsResponse:
        value = self.l1.get(request.key)
        if value is not None:
            return KvsResponse(
                KvsStatus.HIT, request.key, value=value,
                request_id=request.request_id, served_by="l1",
            )
        if self.l2 is not None:
            value = self.l2.get(request.key)
            if value is not None:
                self.l1.set(request.key, value)  # promote
                return KvsResponse(
                    KvsStatus.HIT, request.key, value=value,
                    request_id=request.request_id, served_by="l2",
                )
        # Miss in hardware: software services the request (§3.1).
        self.miss_forwards += 1
        response = self._software_execute(request)
        if response.status is KvsStatus.HIT:
            # fill both levels so the cache warms (§9.2)
            self.l1.set(request.key, response.value)
            if self.l2 is not None:
                self.l2.set(request.key, response.value)
        return KvsResponse(
            response.status, request.key, value=response.value,
            request_id=request.request_id, served_by="software",
        )

    def _software_execute(self, request: KvsRequest) -> KvsResponse:
        """Run the request on the host store, charging the host CPU.

        The store logic executes synchronously (the latency was already
        charged by :meth:`request_latency_us`); the CPU busy time is added
        to the software service's tracker so host power and the host
        controller see the miss load.
        """
        self.software.util.add_busy(self.software.service_time_us)
        return self.software.execute(request)
