"""LRU key-value store.

Backs both the software memcached and LaKe's two cache levels.  Capacity is
in *entries* to match the paper's §5.3 sizing (33M DRAM value entries vs
~500 on-chip entries), with byte accounting for observability.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ...errors import ConfigurationError


class LruStore:
    """A bounded LRU map from str keys to bytes values."""

    def __init__(self, capacity_entries: int, name: str = "store"):
        if capacity_entries <= 0:
            raise ConfigurationError("capacity_entries must be positive")
        self.capacity_entries = capacity_entries
        self.name = name
        self._data: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.sets = 0
        self.evictions = 0
        self.bytes_stored = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- operations ----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """Lookup; refreshes LRU position on hit."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def set(self, key: str, value: bytes) -> None:
        """Insert/replace; evicts the LRU entry when full."""
        old = self._data.pop(key, None)
        if old is not None:
            self.bytes_stored -= len(old)
        elif len(self._data) >= self.capacity_entries:
            evicted_key, evicted_value = self._data.popitem(last=False)
            self.bytes_stored -= len(evicted_value)
            self.evictions += 1
        self._data[key] = value
        self.bytes_stored += len(value)
        self.sets += 1

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it was present."""
        value = self._data.pop(key, None)
        if value is None:
            return False
        self.bytes_stored -= len(value)
        return True

    def clear(self) -> None:
        """Drop all entries (LaKe's caches start cold after a shift, §9.2)."""
        self._data.clear()
        self.bytes_stored = 0

    # -- statistics -----------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lru_key(self) -> Optional[str]:
        """The coldest key (next eviction victim), or None."""
        if not self._data:
            return None
        return next(iter(self._data))

    def keys(self):
        """The stored keys, LRU-first (for inspection; not a live view)."""
        return list(self._data)
