"""KVS wire protocol (a memcached-like UDP request/response).

LaKe "supports standard memcached functionality" (§3.1); we model the
subset the workloads exercise: GET / SET / DELETE over UDP with small keys
and values (the Facebook ETC workload the paper replays is dominated by
small objects).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...errors import ProtocolError


class KvsOp(enum.Enum):
    GET = "get"
    SET = "set"
    DELETE = "delete"


class KvsStatus(enum.Enum):
    HIT = "hit"
    MISS = "miss"
    STORED = "stored"
    DELETED = "deleted"
    NOT_FOUND = "not_found"


@dataclass(frozen=True)
class KvsRequest:
    """A client request."""

    op: KvsOp
    key: str
    value: Optional[bytes] = None
    request_id: int = 0

    def __post_init__(self):
        if not self.key:
            raise ProtocolError("empty key")
        if len(self.key) > 250:
            raise ProtocolError("key exceeds memcached's 250-byte limit")
        if self.op is KvsOp.SET and self.value is None:
            raise ProtocolError("SET requires a value")
        if self.op is not KvsOp.SET and self.value is not None:
            raise ProtocolError(f"{self.op.value} must not carry a value")

    @property
    def size_bytes(self) -> int:
        """Approximate datagram size: headers + key (+ value)."""
        size = 48 + len(self.key)
        if self.value is not None:
            size += len(self.value)
        return size


@dataclass(frozen=True)
class KvsResponse:
    """A server response."""

    status: KvsStatus
    key: str
    value: Optional[bytes] = None
    request_id: int = 0
    #: which layer served it: "l1", "l2", "software" (observability; the
    #: Figure 6 latency series distinguishes hardware hits from misses)
    served_by: str = "software"

    def __post_init__(self):
        if self.status is KvsStatus.HIT and self.value is None:
            raise ProtocolError("HIT response requires a value")
        if self.status in (KvsStatus.MISS, KvsStatus.NOT_FOUND) and self.value is not None:
            raise ProtocolError(f"{self.status.value} must not carry a value")
