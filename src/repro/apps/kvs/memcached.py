"""Software memcached.

The §4.2 baseline: memcached v1.5.1 on the i7, peaking around 1 Mpps across
4 cores, with service latency ~15µs median at low load (§5.3's ×10 claim
against LaKe's 1.4µs on-chip hit).  It is also the backing store behind
LaKe's miss path ("In the event of cache misses at both levels, the
software services the request").
"""

from __future__ import annotations

from typing import Optional

from ... import calibration as cal
from ...net.packet import Packet
from ...sim import Simulator
from ..common import SoftwareService
from .protocol import KvsOp, KvsRequest, KvsResponse, KvsStatus
from .store import LruStore

#: Entries held by the software store; effectively unbounded relative to the
#: workloads we replay (the host has 64GB RAM, §4.1).
SOFTWARE_STORE_ENTRIES = 10_000_000


class SoftwareMemcached(SoftwareService):
    """Memcached running on a host server."""

    def __init__(
        self,
        sim: Simulator,
        server,
        capacity_pps: Optional[float] = None,
        cores: Optional[float] = None,
        store_entries: int = SOFTWARE_STORE_ENTRIES,
        app_name: str = "memcached",
    ):
        if capacity_pps is None:
            nic = server.nic
            capacity_pps = (
                nic.host_peak_pps if nic is not None else cal.MEMCACHED_PEAK_PPS_MELLANOX
            )
        if cores is None:
            cores = float(server.cpu.total_cores)
        super().__init__(
            sim,
            server,
            app_name,
            capacity_pps=capacity_pps,
            cores=cores,
            extra_latency_us=cal.MEMCACHED_STACK_US,
        )
        self.store = LruStore(store_entries, name=f"{app_name}.store")

    # -- request handling -------------------------------------------------------

    def handle_request(self, packet: Packet) -> KvsResponse:
        request = packet.payload
        if not isinstance(request, KvsRequest):
            raise TypeError(f"memcached got non-KVS payload: {request!r}")
        return self.execute(request)

    def execute(self, request: KvsRequest) -> KvsResponse:
        """Protocol logic, callable directly (used by LaKe's miss path and
        by functional tests without the DES)."""
        if request.op is KvsOp.GET:
            value = self.store.get(request.key)
            if value is None:
                return KvsResponse(
                    KvsStatus.MISS, request.key, request_id=request.request_id
                )
            return KvsResponse(
                KvsStatus.HIT,
                request.key,
                value=value,
                request_id=request.request_id,
            )
        if request.op is KvsOp.SET:
            self.store.set(request.key, request.value)
            return KvsResponse(
                KvsStatus.STORED, request.key, request_id=request.request_id
            )
        # DELETE
        existed = self.store.delete(request.key)
        status = KvsStatus.DELETED if existed else KvsStatus.NOT_FOUND
        return KvsResponse(status, request.key, request_id=request.request_id)
