"""Key-value store: software memcached and hardware LaKe (§3.1).

LaKe is a layered hardware memcached: an on-chip (BRAM) L1 cache, an
on-card DRAM L2, and a miss path that forwards to the host's software
memcached — "A query is only forwarded to software if there are misses at
both layers."
"""

from .protocol import KvsOp, KvsRequest, KvsResponse, KvsStatus
from .store import LruStore
from .memcached import SoftwareMemcached
from .lake import LakeKvs
from .client import KvsClient

__all__ = [
    "KvsOp",
    "KvsRequest",
    "KvsResponse",
    "KvsStatus",
    "LruStore",
    "SoftwareMemcached",
    "LakeKvs",
    "KvsClient",
]
