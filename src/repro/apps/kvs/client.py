"""KVS client — an open-loop, rate-controlled load generator.

Plays the role of the mutilate client of §9.2's Figure 6 experiment: it
issues GETs (and a configurable SET fraction) at a target rate with keys
drawn from a workload's key sampler, and records end-to-end latency and
achieved throughput.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ...errors import ConfigurationError
from ...net.packet import Packet, TrafficClass, make_packet, release_packet
from ...net.node import Node
from ...sim import LatencyRecorder, Simulator, TimeSeries
from ...units import SEC
from ..common import UtilizationTracker
from .protocol import KvsOp, KvsRequest, KvsResponse, KvsStatus

KVS_PORT = 11211


class KvsClient(Node):
    """Sends KVS requests at a controlled rate; records replies."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        server_name: str,
        key_sampler: Callable[[], str],
        value_sampler: Callable[[], bytes],
        rate_pps: float = 0.0,
        set_fraction: float = 0.0,
        rng=None,
        arrival_batch: int = 0,
    ):
        super().__init__(sim, name)
        if not 0.0 <= set_fraction <= 1.0:
            raise ConfigurationError("set_fraction outside [0,1]")
        if arrival_batch < 0:
            raise ConfigurationError("arrival_batch must be >= 0")
        #: 0 = the exact per-tick loop; N > 0 pre-schedules N arrivals per
        #: refill (Simulator.call_every_batched) — faster, same statistics,
        #: but not draw-for-draw identical, so strictly opt-in.
        self.arrival_batch = arrival_batch
        self.server_name = server_name
        self.key_sampler = key_sampler
        self.value_sampler = value_sampler
        self.set_fraction = set_fraction
        self._rng = rng
        self._ids = itertools.count(1)
        self.latency = LatencyRecorder(f"{name}.latency")
        #: (response time, latency) samples for timeline plots (Figure 6)
        self.latency_series = TimeSeries(f"{name}.latency-series")
        #: response timestamps for throughput timelines
        self.response_times_us = []
        self.responses = 0
        self.hits = 0
        self.misses = 0
        self._rate_pps = 0.0
        self._send_timer = None
        if rate_pps > 0:
            self.set_rate(rate_pps)

    # -- load control ------------------------------------------------------

    def set_rate(self, rate_pps: float) -> None:
        """Change the offered rate (0 stops the generator)."""
        if rate_pps < 0:
            raise ConfigurationError("rate must be >= 0")
        if self._send_timer is not None:
            self._send_timer.cancel()
            self._send_timer = None
        self._rate_pps = rate_pps
        if rate_pps > 0:
            interval = SEC / rate_pps
            jitter = 0.3 if self._rng is not None else 0.0
            if self.arrival_batch:
                self._send_timer = self.sim.call_every_batched(
                    interval,
                    self._send_one,
                    jitter=jitter,
                    rng=self._rng,
                    batch=self.arrival_batch,
                )
            else:
                # hot path: one tick per generated request — the Event-free
                # periodic loop (identical tick times and RNG draw order)
                self._send_timer = self.sim.call_every_fast(
                    interval, self._send_one, jitter=jitter, rng=self._rng
                )

    @property
    def rate_pps(self) -> float:
        return self._rate_pps

    def stop(self) -> None:
        self.set_rate(0.0)

    # -- request generation ---------------------------------------------------

    def _send_one(self) -> None:
        is_set = (
            self.set_fraction > 0
            and self._rng is not None
            and self._rng.random() < self.set_fraction
        )
        if is_set:
            request = KvsRequest(
                KvsOp.SET,
                self.key_sampler(),
                value=self.value_sampler(),
                request_id=next(self._ids),
            )
        else:
            request = KvsRequest(
                KvsOp.GET, self.key_sampler(), request_id=next(self._ids)
            )
        packet = make_packet(
            src=self.name,
            dst=self.server_name,
            traffic_class=TrafficClass.MEMCACHED,
            payload=request,
            now=self.sim.now,
            dport=KVS_PORT,
            size_bytes=request.size_bytes,
        )
        self.send(packet)

    # -- response handling -----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        super().receive(packet)
        response = packet.payload
        if not isinstance(response, KvsResponse):
            return
        self.responses += 1
        latency = packet.age_us(self.sim.now)
        self.latency.record(latency)
        self.latency_series.record(self.sim.now, latency)
        self.response_times_us.append(self.sim.now)
        status = response.status
        if status is KvsStatus.HIT:
            self.hits += 1
        elif status is KvsStatus.MISS:
            self.misses += 1
        # the reply terminates here; recycle its shell
        release_packet(packet)
