"""Paxos deployments: roles hosted on servers (libpaxos/DPDK) or FPGAs
(P4xos) inside the DES.

Addressing: clients and acceptors send leader-bound messages to the
**logical leader address** (:data:`LOGICAL_LEADER`); the ToR switch carries
a redirect rule mapping it to the physical node currently acting as leader.
Shifting the leader = rewriting that one rule (§9.2: "the controller
modifies switch forwarding rules to send messages to the new leader").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ... import calibration as cal
from ...errors import ConfigurationError
from ...hw.fpga import NetFpgaSume, make_p4xos_fpga
from ...net.packet import Packet, TrafficClass, make_packet
from ...net.node import Node
from ...net.switch import ForwardingRule, Switch
from ...sim import Simulator
from ...units import msec
from ..common import HardwareService, SoftwareService
from .messages import (
    ClientRequest,
    Decision,
    GapRequest,
    Phase1A,
    Phase1B,
    Phase2A,
    Phase2B,
)
from .roles import AcceptorState, LeaderState, LearnerState

#: The default logical leader address (clients/acceptors never learn the
#: physical leader; the switch does).  Racks running several independent
#: consensus groups give each group its own logical address.
LOGICAL_LEADER = "paxos-leader"

PAXOS_PORT = 8888


class _Directory:
    """Who the protocol participants are (by node name).

    ``leader_address`` is the group's logical leader destination; with N
    groups behind one ToR each directory carries its own, so promises and
    gap requests reach the right group's active leader.
    """

    def __init__(
        self,
        acceptors: List[str],
        learners: List[str],
        leader_address: str = LOGICAL_LEADER,
    ):
        if not acceptors or not learners:
            raise ConfigurationError("need at least one acceptor and one learner")
        self.acceptors = list(acceptors)
        self.learners = list(learners)
        self.leader_address = leader_address


def _route(state, payload, directory: _Directory) -> List[Tuple[str, object]]:
    """Run one message through a role; return (destination, payload) pairs."""
    out: List[Tuple[str, object]] = []
    if isinstance(state, LeaderState):
        if isinstance(payload, ClientRequest):
            proposal = state.handle_client_request(payload)
            if proposal is not None:
                out.extend((a, proposal) for a in directory.acceptors)
        elif isinstance(payload, Phase1B):
            for proposal in state.handle_phase1b(payload):
                out.extend((a, proposal) for a in directory.acceptors)
        elif isinstance(payload, GapRequest):
            proposal = state.handle_gap_request(payload)
            if proposal is not None:
                out.extend((a, proposal) for a in directory.acceptors)
    elif isinstance(state, AcceptorState):
        if isinstance(payload, Phase1A):
            promise = state.handle_phase1a(payload)
            if promise is not None:
                out.append((directory.leader_address, promise))
        elif isinstance(payload, Phase2A):
            vote = state.handle_phase2a(payload)
            if vote is not None:
                out.extend((l, vote) for l in directory.learners)
    elif isinstance(state, LearnerState):
        if isinstance(payload, Phase2B):
            state.handle_phase2b(payload)
            for decision in state.deliverable():
                command = decision.value
                client = getattr(command, "client", None)
                if client is not None:
                    out.append((client, decision))
    else:  # pragma: no cover - defensive
        raise ConfigurationError(f"unknown role state {state!r}")
    return out


class SoftwarePaxosRole(SoftwareService):
    """A Paxos role on a host (libpaxos or its DPDK port, §3.2)."""

    def __init__(
        self,
        sim: Simulator,
        server,
        state,
        directory: _Directory,
        capacity_pps: float,
        stack_latency_us: float,
        cores: float = 1.0,
        app_name: Optional[str] = None,
        dpdk: bool = False,
    ):
        name = app_name or f"paxos.{server.name}"
        super().__init__(
            sim,
            server,
            name,
            capacity_pps=capacity_pps,
            cores=cores,
            extra_latency_us=stack_latency_us,
        )
        self.state = state
        self.directory = directory
        self.dpdk = dpdk
        if dpdk:
            # §4.3: "DPDK constantly polls" — the dedicated core is 100%
            # busy regardless of traffic, which is what makes its power
            # curve flat and high.
            server.cpu.set_load(name, cores, 1.0)

    def _update_cpu_load(self) -> None:
        if self.dpdk:
            self.util.roll()  # keep the window moving
            self.server.cpu.set_load(self.app_name, self.cores, 1.0)
        else:
            super()._update_cpu_load()

    def handle_request(self, packet: Packet):
        for dst, payload in _route(self.state, packet.payload, self.directory):
            self.transmit(self._packet_to(dst, payload, packet))
        return None

    def _packet_to(self, dst: str, payload, cause: Packet) -> Packet:
        return make_packet(
            src=self.server.name,
            dst=dst,
            traffic_class=TrafficClass.PAXOS,
            payload=payload,
            size_bytes=102,
            now=cause.created_us,
            dport=PAXOS_PORT,
        )

    def begin_takeover(self) -> None:
        """(Leader only) run phase 1: multicast 1A to the acceptors."""
        if not isinstance(self.state, LeaderState):
            raise ConfigurationError("begin_takeover on a non-leader role")
        msg = self.state.start_phase1()
        for acceptor in self.directory.acceptors:
            packet = make_packet(
                src=self.server.name,
                dst=acceptor,
                traffic_class=TrafficClass.PAXOS,
                payload=msg,
                now=self.sim.now,
                dport=PAXOS_PORT,
            )
            self.transmit(packet)


class HardwarePaxosRole(HardwareService):
    """A Paxos role compiled to the data plane (P4xos on NetFPGA, §3.2)."""

    def __init__(
        self,
        sim: Simulator,
        card: NetFpgaSume,
        node: Node,
        state,
        directory: _Directory,
        capacity_pps: float = cal.P4XOS_FPGA_CAPACITY_PPS,
        pipeline_us: float = cal.P4XOS_FPGA_PIPELINE_US,
        app_name: Optional[str] = None,
    ):
        super().__init__(
            sim, card, node, app_name or f"p4xos.{node.name}", capacity_pps
        )
        self.state = state
        self.directory = directory
        self.pipeline_us = pipeline_us

    def request_latency_us(self, packet: Packet) -> float:
        return self.pipeline_us

    def handle_request(self, packet: Packet):
        for dst, payload in _route(self.state, packet.payload, self.directory):
            self.node.send(self._packet_to(dst, payload, packet))
        return None

    def _packet_to(self, dst: str, payload, cause: Packet) -> Packet:
        return make_packet(
            src=self.node.name,
            dst=dst,
            traffic_class=TrafficClass.PAXOS,
            payload=payload,
            size_bytes=102,
            now=cause.created_us,
            dport=PAXOS_PORT,
        )

    def stand_by(self) -> None:
        """Hold the card in the §9.2 standby configuration while the
        software leader is active (clock-gated, zero utilization)."""
        self.card.set_utilization(0.0)
        self.card.clock_gate_all_logic()

    def begin_takeover(self) -> None:
        if not isinstance(self.state, LeaderState):
            raise ConfigurationError("begin_takeover on a non-leader role")
        self.card.activate_all_logic()  # leave standby before serving
        msg = self.state.start_phase1()
        for acceptor in self.directory.acceptors:
            packet = make_packet(
                src=self.node.name,
                dst=acceptor,
                traffic_class=TrafficClass.PAXOS,
                payload=msg,
                now=self.sim.now,
                dport=PAXOS_PORT,
            )
            self.node.send(packet)


class LearnerGapScanner:
    """Periodic gap scan for a learner role (§9.2's learner timeout)."""

    def __init__(
        self,
        sim: Simulator,
        role,
        timeout_us: float = msec(cal.PAXOS_LEARNER_GAP_TIMEOUT_MS),
    ):
        self._sim = sim
        self._role = role
        self._timeout_us = timeout_us
        self._timer = sim.call_every(
            timeout_us / 2.0, self._scan, name="learner.gap-scan"
        )

    def _scan(self) -> None:
        state: LearnerState = self._role.state
        for gap in state.gaps(self._sim.now, self._timeout_us):
            packet = make_packet(
                src=self._role.server.name
                if isinstance(self._role, SoftwarePaxosRole)
                else self._role.node.name,
                dst=self._role.directory.leader_address,
                traffic_class=TrafficClass.PAXOS,
                payload=gap,
                now=self._sim.now,
                dport=PAXOS_PORT,
            )
            if isinstance(self._role, SoftwarePaxosRole):
                self._role.transmit(packet)
            else:
                self._role.node.send(packet)

    def stop(self) -> None:
        self._timer.cancel()


class PaxosDeployment:
    """Book-keeping for a deployed Paxos group.

    Tracks the leader candidates (software and hardware) and which one the
    logical leader address currently routes to; ``shift_leader`` performs
    the §9.2 sequence: rewrite the forwarding rule, step the old leader
    down, and start the new leader's phase 1.
    """

    def __init__(self, switch: Switch, logical_leader: str = LOGICAL_LEADER):
        self.switch = switch
        self.logical_leader = logical_leader
        self._leaders: Dict[str, object] = {}  # node name -> role wrapper
        self.active_leader_node: Optional[str] = None
        self.shifts = 0

    def register_leader(self, node_name: str, role) -> None:
        if node_name in self._leaders:
            raise ConfigurationError(f"duplicate leader node {node_name!r}")
        self._leaders[node_name] = role

    def leader_role(self, node_name: str):
        return self._leaders[node_name]

    def activate_leader(self, node_name: str) -> None:
        """Route the logical leader to ``node_name`` and start phase 1."""
        if node_name not in self._leaders:
            raise ConfigurationError(f"unknown leader node {node_name!r}")
        previous = self.active_leader_node
        if previous == node_name:
            return
        self.switch.install_rule(
            ForwardingRule(TrafficClass.PAXOS, self.logical_leader, node_name)
        )
        if previous is not None:
            old_role = self._leaders[previous]
            old_role.state.step_down()
            # a stepped-down hardware leader returns to §9.2 standby
            stand_by = getattr(old_role, "stand_by", None)
            if stand_by is not None:
                stand_by()
            self.shifts += 1
        self.active_leader_node = node_name
        self._leaders[node_name].begin_takeover()

    shift_leader = activate_leader
