"""Paxos client: open-loop submission with the §9.2 retry timeout.

"The clients resend requests after a time-out period if the learner has not
acknowledged" — the ~100ms client timeout is what Figure 7's throughput gap
corresponds to, so it is a first-class parameter here.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ... import calibration as cal
from ...errors import ConfigurationError
from ...net.packet import Packet, TrafficClass, make_packet, release_packet
from ...net.node import Node
from ...sim import LatencyRecorder, Simulator, TimeSeries
from ...units import SEC, msec
from .deployment import LOGICAL_LEADER, PAXOS_PORT
from .messages import ClientCommand, ClientRequest, Decision


class PaxosClient(Node):
    """Submits commands; open-loop (fixed rate) or closed-loop (fixed
    window of outstanding requests, like the paper's benchmark clients —
    closed-loop throughput adapts to consensus latency, which is what makes
    Figure 7's throughput rise when the leader moves to hardware)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_pps: float = 0.0,
        timeout_us: float = msec(cal.PAXOS_CLIENT_TIMEOUT_MS),
        max_outstanding: int = 4096,
        rng=None,
        leader_address: str = LOGICAL_LEADER,
    ):
        super().__init__(sim, name)
        if timeout_us <= 0:
            raise ConfigurationError("timeout must be positive")
        self.timeout_us = timeout_us
        #: the logical leader this client's group addresses (per-group in
        #: multi-group racks; the ToR maps it to the active leader node)
        self.leader_address = leader_address
        self.max_outstanding = max_outstanding
        self._rng = rng
        self._ids = itertools.count(1)
        #: request_id -> first-submission time (for end-to-end latency)
        self._outstanding: Dict[int, float] = {}
        self._timeout_events: Dict[int, object] = {}
        self.latency = LatencyRecorder(f"{name}.latency")
        #: (decision time, latency) samples for timeline plots (Figure 7)
        self.latency_series = TimeSeries(f"{name}.latency-series")
        #: decision timestamps for throughput timelines
        self.decision_times_us = []
        self.decided = 0
        self.retries = 0
        self.dropped_backpressure = 0
        self._send_timer = None
        self._rate_pps = 0.0
        self._window = 0  # closed-loop outstanding target; 0 = open loop
        if rate_pps > 0:
            self.set_rate(rate_pps)

    # -- load control ------------------------------------------------------

    def set_rate(self, rate_pps: float) -> None:
        if rate_pps < 0:
            raise ConfigurationError("rate must be >= 0")
        if self._send_timer is not None:
            self._send_timer.cancel()
            self._send_timer = None
        self._rate_pps = rate_pps
        if rate_pps > 0:
            interval = SEC / rate_pps
            jitter = 0.3 if self._rng is not None else 0.0
            # hot path: Event-free periodic loop (same ticks, same draws)
            self._send_timer = self.sim.call_every_fast(
                interval, self._submit_new, jitter=jitter, rng=self._rng
            )

    @property
    def rate_pps(self) -> float:
        return self._rate_pps

    def start_closed_loop(self, window: int) -> None:
        """Keep ``window`` requests outstanding; each decision triggers the
        next submission."""
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self._window = window
        for _ in range(window - len(self._outstanding)):
            self._submit_new()

    def stop(self) -> None:
        self.set_rate(0.0)
        self._window = 0
        for event in self._timeout_events.values():
            event.cancel()
        self._timeout_events.clear()

    # -- submission --------------------------------------------------------

    def _submit_new(self) -> None:
        if len(self._outstanding) >= self.max_outstanding:
            self.dropped_backpressure += 1
            return
        request_id = next(self._ids)
        self._outstanding[request_id] = self.sim.now
        self._send(request_id, attempt=1)

    def _send(self, request_id: int, attempt: int) -> None:
        command = ClientCommand(client=self.name, request_id=request_id)
        packet = make_packet(
            src=self.name,
            dst=self.leader_address,
            traffic_class=TrafficClass.PAXOS,
            payload=ClientRequest(command=command, attempt=attempt),
            now=self.sim.now,
            dport=PAXOS_PORT,
        )
        self.send(packet)
        self._timeout_events[request_id] = self.sim.schedule(
            self.timeout_us,
            lambda rid=request_id, a=attempt: self._on_timeout(rid, a),
            name=f"{self.name}.timeout",
        )

    def _on_timeout(self, request_id: int, attempt: int) -> None:
        if request_id not in self._outstanding:
            return
        self.retries += 1
        self._send(request_id, attempt + 1)

    # -- decisions ------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        super().receive(packet)
        decision = packet.payload
        if not isinstance(decision, Decision):
            return
        # the decision terminates here whatever happens next (the payload
        # object, not the shell, is what learners/duplicates share)
        release_packet(packet)
        command = decision.value
        if not isinstance(command, ClientCommand) or command.client != self.name:
            return
        submitted = self._outstanding.pop(command.request_id, None)
        if submitted is None:
            return  # duplicate decision for an already-acknowledged command
        event = self._timeout_events.pop(command.request_id, None)
        if event is not None:
            event.cancel()
        self.decided += 1
        latency = self.sim.now - submitted
        self.latency.record(latency)
        self.latency_series.record(self.sim.now, latency)
        self.decision_times_us.append(self.sim.now)
        if self._window and len(self._outstanding) < self._window:
            self._submit_new()
