"""Paxos message types (after Lamport [42] and P4xos [21]).

Rounds (ballots) are positive integers, partitioned among potential leaders
(round = k * stride + leader_index) so two leaders never share a round.
Instances (the paper's "sequence numbers") are positive integers assigned
by the leader.

§9.2's shift mechanism appears here as ``Phase2B.last_voted_instance`` —
"We extended the acceptor logic to include the last-voted-upon sequence
number whenever the acceptor responds to a message" — and as
:class:`GapRequest`, the learner→leader message asking to re-initiate an
instance with a potential no-op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The value proposed to fill gaps (§9.2: "Otherwise, they learn a no-op").
NOOP = "<no-op>"


@dataclass(frozen=True)
class ClientCommand:
    """An application command submitted to consensus."""

    client: str
    request_id: int

    def __repr__(self) -> str:
        return f"cmd({self.client}#{self.request_id})"


@dataclass(frozen=True)
class ClientRequest:
    """Client → leader: please order this command."""

    command: ClientCommand
    attempt: int = 1  # retry counter (client timeout, Figure 7)


@dataclass(frozen=True)
class Phase1A:
    """Leader → acceptors: leadership takeover for all instances."""

    round: int
    leader: str


@dataclass(frozen=True)
class Phase1B:
    """Acceptor → leader: promise.

    ``votes`` reports, per instance the acceptor has voted in, the highest
    (vote round, value) pair — the information the new leader needs to
    re-propose possibly-decided values safely.  ``last_voted_instance`` is
    the §9.2 piggyback.
    """

    round: int
    acceptor: str
    votes: Dict[int, Tuple[int, object]] = field(default_factory=dict)
    last_voted_instance: int = 0


@dataclass(frozen=True)
class Phase2A:
    """Leader → acceptors: proposal for one instance."""

    round: int
    instance: int
    value: object


@dataclass(frozen=True)
class Phase2B:
    """Acceptor → learners: vote.  Carries the §9.2 piggyback."""

    round: int
    instance: int
    acceptor: str
    value: object
    last_voted_instance: int = 0


@dataclass(frozen=True)
class Decision:
    """Learner → client: an instance was decided."""

    instance: int
    value: object


@dataclass(frozen=True)
class GapRequest:
    """Learner → leader: re-initiate ``instance`` (§9.2 gap handling)."""

    instance: int
