"""Paxos role state machines — pure protocol logic, no transport.

Each handler takes a message and returns the messages to send (or an empty
list), so the same logic runs under the DES deployments, under direct-call
unit tests, and under the hypothesis safety tests (message loss,
duplication, reordering, and leader changes).

Safety argument (standard multi-Paxos):

* rounds are unique per leader (round = k·stride + leader_index);
* an acceptor promises at most one round and never votes below it;
* a new leader reads a majority's votes in phase 1 and re-proposes, for
  every instance with any reported vote, the value of the highest-round
  vote; instances without reported votes are free (no majority can have
  voted for them in a lower round, by quorum intersection);
* learners declare a value chosen only on a majority of phase-2B votes for
  the same (round, instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...errors import ProtocolError
from .messages import (
    ClientRequest,
    Decision,
    GapRequest,
    NOOP,
    Phase1A,
    Phase1B,
    Phase2A,
    Phase2B,
)


def majority(n: int) -> int:
    """Quorum size for ``n`` acceptors."""
    if n <= 0:
        raise ProtocolError("need at least one acceptor")
    return n // 2 + 1


# ---------------------------------------------------------------------------
# Acceptor.
# ---------------------------------------------------------------------------


class AcceptorState:
    """One Paxos acceptor.

    ``recovery_window`` bounds how far back the phase-1B vote report goes
    (instances above ``last_voted − window``): the standard log-truncation
    optimization — instances older than the window are checkpointed/decided
    in any real deployment, and reporting the full log would make the §9.2
    leader shift re-propose tens of thousands of settled instances.  The
    safety property tests run with ``recovery_window=None`` (report all).
    """

    def __init__(self, acceptor_id: str, recovery_window: Optional[int] = None):
        if recovery_window is not None and recovery_window <= 0:
            raise ProtocolError("recovery_window must be positive")
        self.acceptor_id = acceptor_id
        self.recovery_window = recovery_window
        self.promised_round = 0
        #: instance -> (vote round, value)
        self.votes: Dict[int, Tuple[int, object]] = {}
        self.last_voted_instance = 0

    def _reportable_votes(self) -> Dict[int, Tuple[int, object]]:
        if self.recovery_window is None:
            return dict(self.votes)
        floor = self.last_voted_instance - self.recovery_window
        return {i: v for i, v in self.votes.items() if i > floor}

    def handle_phase1a(self, msg: Phase1A) -> Optional[Phase1B]:
        """Promise if the round is new; stale rounds are ignored."""
        if msg.round <= self.promised_round:
            return None
        self.promised_round = msg.round
        return Phase1B(
            round=msg.round,
            acceptor=self.acceptor_id,
            votes=self._reportable_votes(),
            last_voted_instance=self.last_voted_instance,
        )

    def handle_phase2a(self, msg: Phase2A) -> Optional[Phase2B]:
        """Vote unless a higher round was promised."""
        if msg.round < self.promised_round:
            return None
        self.promised_round = msg.round
        self.votes[msg.instance] = (msg.round, msg.value)
        if msg.instance > self.last_voted_instance:
            self.last_voted_instance = msg.instance
        return Phase2B(
            round=msg.round,
            instance=msg.instance,
            acceptor=self.acceptor_id,
            value=msg.value,
            last_voted_instance=self.last_voted_instance,
        )


# ---------------------------------------------------------------------------
# Leader.
# ---------------------------------------------------------------------------

#: Round numbers are partitioned: round = k * ROUND_STRIDE + leader_index.
ROUND_STRIDE = 16


class LeaderState:
    """A multi-Paxos leader/coordinator.

    Lifecycle: construct → :meth:`start_phase1` → feed :meth:`handle_phase1b`
    until ``ready`` → :meth:`propose` client values.  A leader that is not
    ready drops client requests (the paper's Figure 7 shows exactly this as
    the ~100ms throughput gap bridged by the client retry timeout).
    """

    def __init__(self, leader_id: str, leader_index: int, n_acceptors: int):
        if not 0 <= leader_index < ROUND_STRIDE:
            raise ProtocolError(f"leader_index must be in [0,{ROUND_STRIDE})")
        self.leader_id = leader_id
        self.leader_index = leader_index
        self.n_acceptors = n_acceptors
        self.quorum = majority(n_acceptors)
        self.round = 0
        self.next_instance = 1
        self.ready = False
        self._phase1_promises: Dict[str, Phase1B] = {}
        #: values re-proposed during takeover: instance -> value
        self.recovered: Dict[int, object] = {}
        #: every value this leader proposed in its current round.  A Paxos
        #: proposer must propose at most one value per (round, instance);
        #: gap-fill requests therefore *re-transmit* from here rather than
        #: inventing a no-op for an instance already proposed.
        self.proposed: Dict[int, object] = {}
        self.proposals_sent = 0
        self.dropped_not_ready = 0

    # -- phase 1 (takeover) ------------------------------------------------

    def start_phase1(self, round_counter: int = 1) -> Phase1A:
        """Begin leadership at round ``k·stride + index`` for k >= counter."""
        candidate = round_counter * ROUND_STRIDE + self.leader_index
        if candidate <= self.round:
            candidate = (self.round // ROUND_STRIDE + 1) * ROUND_STRIDE + self.leader_index
        self.round = candidate
        self.ready = False
        self._phase1_promises.clear()
        self.proposed.clear()  # a fresh round may propose fresh values
        return Phase1A(round=self.round, leader=self.leader_id)

    def handle_phase1b(self, msg: Phase1B) -> List[Phase2A]:
        """Collect promises; on quorum, recover and become ready.

        Returns the phase-2A re-proposals required for safety (highest-round
        reported value per voted instance).
        """
        if msg.round != self.round or self.ready:
            return []
        self._phase1_promises[msg.acceptor] = msg
        if len(self._phase1_promises) < self.quorum:
            return []
        # Quorum reached: merge vote reports.
        merged: Dict[int, Tuple[int, object]] = {}
        highest_instance = 0
        for promise in self._phase1_promises.values():
            highest_instance = max(highest_instance, promise.last_voted_instance)
            for instance, (vrnd, value) in promise.votes.items():
                seen = merged.get(instance)
                if seen is None or vrnd > seen[0]:
                    merged[instance] = (vrnd, value)
        self.ready = True
        # §9.2: the new leader learns "the most recent not-yet-used sequence
        # number" from the acceptors' piggybacked last-voted instances.
        self.next_instance = highest_instance + 1
        reproposals = []
        for instance in sorted(merged):
            _, value = merged[instance]
            self.recovered[instance] = value
            self.proposed[instance] = value
            reproposals.append(
                Phase2A(round=self.round, instance=instance, value=value)
            )
        self.proposals_sent += len(reproposals)
        return reproposals

    # -- steady state ------------------------------------------------------------

    def propose(self, value: object) -> Optional[Phase2A]:
        """Assign the next instance to ``value``; None while not ready."""
        if not self.ready:
            self.dropped_not_ready += 1
            return None
        proposal = Phase2A(round=self.round, instance=self.next_instance, value=value)
        self.proposed[self.next_instance] = value
        self.next_instance += 1
        self.proposals_sent += 1
        return proposal

    def handle_client_request(self, msg: ClientRequest) -> Optional[Phase2A]:
        return self.propose(msg.command)

    def handle_gap_request(self, msg: GapRequest) -> Optional[Phase2A]:
        """Re-initiate an instance a learner reported as a gap (§9.2).

        If this leader already proposed a value for the instance in its
        current round (including takeover re-proposals), it re-transmits
        that value ("If that instance has previously been voted on, then
        the learners will receive a new value"); otherwise a no-op —
        recorded, so any later gap request gets the same answer.
        """
        if not self.ready:
            return None
        if msg.instance >= self.next_instance:
            # never assigned by this leader; nothing to fill
            return None
        value = self.proposed.get(msg.instance)
        if value is None:
            value = NOOP
            self.proposed[msg.instance] = NOOP
        self.proposals_sent += 1
        return Phase2A(round=self.round, instance=msg.instance, value=value)

    def step_down(self) -> None:
        """Stop proposing (the on-demand controller shifted the leader)."""
        self.ready = False


# ---------------------------------------------------------------------------
# Learner.
# ---------------------------------------------------------------------------


@dataclass
class _InstanceTally:
    """Vote bookkeeping for one instance."""

    #: round -> set of acceptors that voted that round
    voters: Dict[int, Set[str]] = field(default_factory=dict)
    #: round -> value proposed in that round (must be unique per round)
    values: Dict[int, object] = field(default_factory=dict)
    chosen: Optional[object] = None


class LearnerState:
    """A Paxos learner: declares decisions, delivers in order, finds gaps."""

    def __init__(self, learner_id: str, n_acceptors: int):
        self.learner_id = learner_id
        self.n_acceptors = n_acceptors
        self.quorum = majority(n_acceptors)
        self._tallies: Dict[int, _InstanceTally] = {}
        self.decided: Dict[int, object] = {}
        self.delivered_upto = 0
        self.max_decided = 0
        #: time (supplied by the caller) when each undelivered gap was first
        #: observed; used by the gap timeout
        self._gap_seen_at: Dict[int, float] = {}

    def handle_phase2b(self, msg: Phase2B) -> Optional[Decision]:
        """Count a vote; returns a Decision on fresh quorum, else None."""
        tally = self._tallies.setdefault(msg.instance, _InstanceTally())
        known = tally.values.get(msg.round)
        if known is None:
            tally.values[msg.round] = msg.value
        elif known != msg.value:
            raise ProtocolError(
                f"two values in round {msg.round} of instance {msg.instance}: "
                f"{known!r} vs {msg.value!r}"
            )
        voters = tally.voters.setdefault(msg.round, set())
        voters.add(msg.acceptor)
        if len(voters) < self.quorum or msg.instance in self.decided:
            return None
        if tally.chosen is not None and tally.chosen != msg.value:
            raise ProtocolError(
                f"instance {msg.instance} chose two values: "
                f"{tally.chosen!r} then {msg.value!r}"
            )
        tally.chosen = msg.value
        self.decided[msg.instance] = msg.value
        self.max_decided = max(self.max_decided, msg.instance)
        return Decision(instance=msg.instance, value=msg.value)

    # -- in-order delivery ----------------------------------------------------

    def deliverable(self) -> List[Decision]:
        """Decisions that extend the contiguous prefix, in order."""
        out = []
        while (self.delivered_upto + 1) in self.decided:
            self.delivered_upto += 1
            out.append(
                Decision(self.delivered_upto, self.decided[self.delivered_upto])
            )
        return out

    # -- gap detection (§9.2) -------------------------------------------------

    def gaps(self, now: float, timeout: float) -> List[GapRequest]:
        """Instances below ``max_decided`` still undecided after ``timeout``.

        "The learner will look for gaps in instance numbers after a time-out
        period.  If it discovers a gap, then it will send a message to the
        newly elected leader, asking it to re-initiate that instance."
        """
        requests = []
        for instance in range(self.delivered_upto + 1, self.max_decided):
            if instance in self.decided:
                continue
            first_seen = self._gap_seen_at.setdefault(instance, now)
            if now - first_seen >= timeout:
                requests.append(GapRequest(instance))
                self._gap_seen_at[instance] = now  # back off: re-ask later
        return requests
