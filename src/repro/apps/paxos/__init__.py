"""Paxos consensus: software libpaxos / DPDK and hardware P4xos (§3.2).

The protocol core (:mod:`repro.apps.paxos.roles`) is a complete,
transport-agnostic multi-Paxos: leader (sequence-number assignment, phase-1
takeover with value recovery), acceptors (promises, votes, and the §9.2
last-voted piggyback), and learners (quorum tracking, in-order delivery,
gap detection with no-op fill).  Deployments
(:mod:`repro.apps.paxos.deployment`) host the roles on servers (libpaxos /
DPDK) or on FPGA cards (P4xos) inside the DES.
"""

from .messages import (
    ClientCommand,
    ClientRequest,
    Decision,
    GapRequest,
    NOOP,
    Phase1A,
    Phase1B,
    Phase2A,
    Phase2B,
)
from .roles import AcceptorState, LeaderState, LearnerState, majority
from .deployment import (
    PaxosDeployment,
    SoftwarePaxosRole,
    HardwarePaxosRole,
    LOGICAL_LEADER,
)
from .client import PaxosClient

__all__ = [
    "ClientCommand",
    "ClientRequest",
    "Decision",
    "GapRequest",
    "NOOP",
    "Phase1A",
    "Phase1B",
    "Phase2A",
    "Phase2B",
    "AcceptorState",
    "LeaderState",
    "LearnerState",
    "majority",
    "PaxosDeployment",
    "SoftwarePaxosRole",
    "HardwarePaxosRole",
    "LOGICAL_LEADER",
    "PaxosClient",
]
