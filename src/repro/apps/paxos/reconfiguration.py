"""Acceptor-set reconfiguration (§9.2's second well-studied problem).

"Changing the members of Paxos … requires addressing two well-studied
problems in distributed systems: leader election … and reconfiguration
(i.e., replacing one or more acceptors).  In this paper, we focus on leader
election … For reconfiguration, we point readers to protocols from prior
work [Vertical Paxos; Reconfiguring a State Machine] which could be adapted
for this setting."

This module adapts the simplest of those protocols — stop-sign
reconfiguration (Lamport et al., "Reconfiguring a State Machine", §3.1) —
to the package's role state machines:

1. the coordinator seals the old configuration: the leader stops proposing
   and a *stop command* is decided as the next instance in the old group;
2. the decided log up to the stop instance is transferred to the new
   acceptors by re-running phase 2 on the new group (state transfer);
3. a new epoch begins: leaders, acceptors, and learners of epoch e+1 handle
   instances strictly after the stop instance; clients keep their logical
   addressing.

The invariant checked by the property tests: the sequence of decided
commands (excluding no-ops and the stop command itself) is identical before
and after a reconfiguration, and decisions never diverge across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ProtocolError
from .messages import NOOP, Phase2A
from .roles import AcceptorState, LeaderState, LearnerState, majority


@dataclass(frozen=True)
class StopCommand:
    """The §9.2-style stop sign sealing an epoch."""

    epoch: int
    new_acceptors: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"stop(epoch={self.epoch} -> {list(self.new_acceptors)})"


@dataclass(frozen=True)
class Configuration:
    """One epoch's membership."""

    epoch: int
    acceptors: Tuple[str, ...]
    #: first instance owned by this epoch (1 for the initial config)
    first_instance: int = 1

    def __post_init__(self):
        if self.epoch < 0:
            raise ProtocolError("epoch must be >= 0")
        if not self.acceptors:
            raise ProtocolError("configuration needs acceptors")
        if self.first_instance < 1:
            raise ProtocolError("first_instance must be >= 1")

    @property
    def quorum(self) -> int:
        return majority(len(self.acceptors))


class ReconfigurableGroup:
    """A Paxos group whose acceptor set can change between epochs.

    Operates at the role level (direct message delivery) — the DES
    deployments can drive it the same way the §9.2 leader shift drives
    :class:`LeaderState`, but the protocol logic and its invariants live
    here, transport-free.
    """

    def __init__(self, initial_acceptors: Sequence[str], leader_id: str = "L0"):
        self.configs: List[Configuration] = [
            Configuration(epoch=0, acceptors=tuple(initial_acceptors))
        ]
        self.acceptors: Dict[str, AcceptorState] = {
            name: AcceptorState(name) for name in initial_acceptors
        }
        self.leader = LeaderState(leader_id, 0, len(initial_acceptors))
        self.learner = LearnerState("learner", len(initial_acceptors))
        self._leader_seq = 0
        self._run_phase1()
        self.reconfigurations = 0

    # -- current epoch --------------------------------------------------------

    @property
    def config(self) -> Configuration:
        return self.configs[-1]

    def _epoch_acceptors(self) -> List[AcceptorState]:
        return [self.acceptors[name] for name in self.config.acceptors]

    def _run_phase1(self) -> None:
        # round counters grow with the epoch so a reused acceptor's old
        # promise can never outrank the new epoch's leader
        p1a = self.leader.start_phase1(round_counter=len(self.configs) + 1)
        for acceptor in self._epoch_acceptors():
            promise = acceptor.handle_phase1a(p1a)
            if promise is not None:
                self.leader.handle_phase1b(promise)
        if not self.leader.ready:
            raise ProtocolError("phase 1 failed to reach a quorum")
        # the new epoch's log starts after any transferred state
        self.leader.next_instance = max(
            self.leader.next_instance, self.config.first_instance
        )

    # -- normal operation -------------------------------------------------------

    def submit(self, value: object) -> Optional[int]:
        """Run one value through consensus; returns its instance."""
        proposal = self.leader.propose(value)
        if proposal is None:
            return None
        self._commit(proposal)
        return proposal.instance

    def _commit(self, proposal: Phase2A) -> None:
        for acceptor in self._epoch_acceptors():
            vote = acceptor.handle_phase2a(proposal)
            if vote is not None:
                self.learner.handle_phase2b(vote)

    def delivered_commands(self) -> List[object]:
        """All delivered commands in order, no-ops and stop signs excluded."""
        self.learner.deliverable()
        return [
            self.learner.decided[i]
            for i in range(1, self.learner.delivered_upto + 1)
            if self.learner.decided[i] is not NOOP
            and not isinstance(self.learner.decided[i], StopCommand)
        ]

    # -- reconfiguration -----------------------------------------------------------

    def reconfigure(self, new_acceptors: Sequence[str]) -> Configuration:
        """Replace the acceptor set.

        Returns the new configuration.  Decided commands are preserved: the
        old epoch is sealed with a stop command, the decided prefix is
        transferred, and the new epoch owns subsequent instances.
        """
        if not new_acceptors:
            raise ProtocolError("new configuration needs acceptors")
        old_config = self.config

        # 1. seal the old epoch with a stop command
        stop = StopCommand(
            epoch=old_config.epoch, new_acceptors=tuple(new_acceptors)
        )
        stop_instance = self.submit(stop)
        if stop_instance is None:
            raise ProtocolError("failed to decide the stop command")
        self.leader.step_down()

        # 2. state transfer: make the decided prefix durable on the new set
        self.learner.deliverable()
        decided_prefix = {
            i: self.learner.decided[i] for i in range(1, stop_instance + 1)
        }
        if len(decided_prefix) != stop_instance:
            raise ProtocolError("cannot reconfigure with gaps in the decided log")
        for name in new_acceptors:
            self.acceptors.setdefault(name, AcceptorState(name))

        # 3. activate the new epoch
        config = Configuration(
            epoch=old_config.epoch + 1,
            acceptors=tuple(new_acceptors),
            first_instance=stop_instance + 1,
        )
        self.configs.append(config)
        self._leader_seq += 1
        self.leader = LeaderState(
            f"L{self._leader_seq}",
            self._leader_seq % 16,
            len(new_acceptors),
        )
        # learner continues across epochs with the new quorum size
        self.learner.quorum = config.quorum
        self.learner.n_acceptors = len(new_acceptors)

        # transfer: re-run phase 2 for the decided prefix on the new group
        self._run_phase1()
        transfer_round = self.leader.round
        for instance in range(1, stop_instance + 1):
            proposal = Phase2A(
                round=transfer_round, instance=instance, value=decided_prefix[instance]
            )
            for name in new_acceptors:
                vote = self.acceptors[name].handle_phase2a(proposal)
                if vote is not None:
                    self.learner.handle_phase2b(vote)
        self.leader.next_instance = stop_instance + 1
        self.reconfigurations += 1
        return config
