"""A programmable switch with a rewritable forwarding table.

The Paxos on-demand shift (§9.2) is implemented by a centralized controller
that "modifies switch forwarding rules to send messages to the new leader".
:class:`Switch` provides exactly that: destination-based forwarding with
optional (traffic_class, dport) match rules that take precedence, so a
controller can redirect e.g. all PAXOS traffic addressed to the logical
leader onto a different physical node without touching other flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..sim import Simulator
from .link import Link
from .node import Node
from .packet import Packet, TrafficClass


@dataclass(frozen=True)
class ForwardingRule:
    """An exact-match redirect rule.

    Matches on (traffic_class, logical destination) and rewrites the packet
    destination to ``next_hop`` before normal destination lookup.
    """

    traffic_class: TrafficClass
    logical_dst: str
    next_hop: str


class Switch(Node):
    """Destination-forwarding switch with redirect rules and counters."""

    def __init__(self, sim: Simulator, name: str = "switch"):
        super().__init__(sim, name)
        self._ports: Dict[str, Link] = {}
        self._rules: Dict[Tuple[TrafficClass, str], ForwardingRule] = {}
        self._dispatchers: Dict[
            Tuple[TrafficClass, str], Callable[[Packet], str]
        ] = {}
        #: destination name -> port name to reach it (multi-switch fabrics:
        #: the spine routes each host via its rack's ToR).
        self._routes: Dict[str, str] = {}
        #: port used for any destination with no direct port and no route
        #: (a ToR's uplink toward the spine).  None on single-switch racks.
        self._default_route: Optional[str] = None
        self.forwarded = 0
        self.redirected = 0
        self.dispatched = 0
        self.routed = 0
        self.dropped_no_route = 0
        #: per-traffic-class packet counters (controllers read these).
        self.class_counters: Dict[TrafficClass, int] = {tc: 0 for tc in TrafficClass}
        #: per-(class, logical destination) counters, bumped before rule or
        #: dispatch rewrite — how a centralized controller watches one
        #: consensus group's leader-bound rate among many sharing the ToR.
        self.logical_counters: Dict[Tuple[TrafficClass, str], int] = {}

    # -- wiring ----------------------------------------------------------

    def connect(self, node: Node, link: Link) -> None:
        """Attach a port toward ``node`` over ``link``."""
        if node.name in self._ports:
            raise ConfigurationError(f"duplicate port toward {node.name!r}")
        self._ports[node.name] = link

    @property
    def ports(self) -> Dict[str, Link]:
        return dict(self._ports)

    def add_route(self, dst_name: str, via: str) -> None:
        """Route packets for ``dst_name`` out the port toward ``via``.

        This is the fabric's static routing table: the spine knows each
        host is reachable via its rack's ToR without holding a direct
        port to the host.
        """
        if via not in self._ports:
            raise ConfigurationError(
                f"route via {via!r} is not a connected port of {self.name!r}"
            )
        self._routes[dst_name] = via

    def set_default_route(self, via: str) -> None:
        """Send anything without a port or route out ``via`` (ToR uplink)."""
        if via not in self._ports:
            raise ConfigurationError(
                f"default route via {via!r} is not a connected port of "
                f"{self.name!r}"
            )
        self._default_route = via

    def route_for(self, dst_name: str) -> Optional[str]:
        """The port a packet for ``dst_name`` would leave on, or None."""
        if dst_name in self._ports:
            return dst_name
        return self._routes.get(dst_name, self._default_route)

    # -- control plane -----------------------------------------------------

    def install_rule(self, rule: ForwardingRule) -> None:
        """Install (or replace) a redirect rule.  This is the operation the
        Paxos on-demand controller performs to shift the leader (§9.2).

        The next hop must be *routable* — a direct port, a routing-table
        entry, or (fabric ToRs) a default uplink — not necessarily a local
        port: a centralized controller installs the same leader rule on
        every switch in the fabric, and remote ToRs forward via the spine.
        """
        if self.route_for(rule.next_hop) is None:
            raise ConfigurationError(
                f"rule next_hop {rule.next_hop!r} is not a connected port"
            )
        self._rules[(rule.traffic_class, rule.logical_dst)] = rule

    def remove_rule(self, traffic_class: TrafficClass, logical_dst: str) -> Optional[ForwardingRule]:
        """Remove a redirect rule; returns it, or None if absent."""
        return self._rules.pop((traffic_class, logical_dst), None)

    def rule_for(self, traffic_class: TrafficClass, logical_dst: str) -> Optional[ForwardingRule]:
        return self._rules.get((traffic_class, logical_dst))

    def logical_count(self, traffic_class: TrafficClass, logical_dst: str) -> int:
        """Packets seen for a (class, logical destination) pair."""
        return self.logical_counters.get((traffic_class, logical_dst), 0)

    def install_dispatch(
        self,
        traffic_class: TrafficClass,
        logical_dst: str,
        chooser: Callable[[Packet], str],
    ) -> None:
        """Install a per-packet dispatch rule for a logical destination.

        Where :class:`ForwardingRule` rewrites to one fixed next hop,
        a dispatch rule consults ``chooser(packet)`` on every matching
        packet — this is how a rack spreads a logical service address
        across many hosts (e.g. key-sharded KVS routing, where the chooser
        is a :class:`repro.net.classifier.KeyShardRouter`).  Exact-match
        redirect rules take precedence over dispatch rules.
        """
        self._dispatchers[(traffic_class, logical_dst)] = chooser

    def remove_dispatch(
        self, traffic_class: TrafficClass, logical_dst: str
    ) -> Optional[Callable[[Packet], str]]:
        """Remove a dispatch rule; returns the chooser, or None if absent."""
        return self._dispatchers.pop((traffic_class, logical_dst), None)

    # -- data plane --------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        # hot path: one call per forwarded packet; Node.receive inlined
        self.rx_packets += 1
        traffic_class = packet.traffic_class
        self.class_counters[traffic_class] += 1
        key = (traffic_class, packet.dst)
        rule = self._rules.get(key)
        target = packet.dst
        if rule is not None:
            self.logical_counters[key] = self.logical_counters.get(key, 0) + 1
            target = rule.next_hop
            self.redirected += 1
        else:
            chooser = self._dispatchers.get(key)
            if chooser is not None:
                self.logical_counters[key] = self.logical_counters.get(key, 0) + 1
                target = chooser(packet)
                self.dispatched += 1
        link = self._ports.get(target)
        if link is None:
            # multi-switch fabrics: static route (spine -> owning ToR) or
            # default route (ToR -> spine uplink); single-switch racks have
            # neither, so this stays a drop there.
            via = self._routes.get(target, self._default_route)
            if via is not None:
                link = self._ports.get(via)
            if link is None:
                self.dropped_no_route += 1
                return
            self.routed += 1
        self.forwarded += 1
        link.send(packet)
