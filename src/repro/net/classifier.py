"""Packet classifier — the hardware front-end used by LaKe and Emu DNS.

§3.1: LaKe contains a packet classifier that separates memcached traffic
(processed on the card) from normal traffic (DMA'd to the host as a plain
NIC).  §3.3: Emu DNS was amended with the same classifier so it can serve as
both a NIC and a DNS.  §9.1: the network-controlled on-demand controller is
"implemented in 40 lines of code within the FPGA's classifier module" — in
this package the controller hooks the classifier's per-class rate counters.

The classifier has a per-class *offload switch*: when offload is enabled for
a class, matching packets go to the hardware application; otherwise they go
to the host path.  Flipping this switch is how a workload shifts between
software and network.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..sim import Simulator
from .packet import Packet, TrafficClass

PacketHandler = Callable[[Packet], None]


def key_shard(key: str, n_shards: int) -> int:
    """The canonical key→shard mapping used across the rack.

    CRC32 rather than :func:`hash` so the mapping is stable across
    processes (Python string hashing is salted per interpreter) — the
    ToR router, the per-host preloaders and the workload generators must
    all agree on shard ownership.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    return zlib.crc32(key.encode()) % n_shards


@dataclass
class ClassifierRule:
    """Routing decision for one traffic class."""

    traffic_class: TrafficClass
    #: deliver to the on-card application when offload is enabled
    hardware: PacketHandler
    #: deliver to the host when offload is disabled (plain NIC path)
    host: PacketHandler
    offload_enabled: bool = False


class PacketClassifier:
    """Classifies packets by traffic class and steers hardware vs host.

    Maintains per-class packet counters that rate estimators (and the
    network-controlled on-demand controller) read.
    """

    def __init__(self, sim: Simulator, default_host: Optional[PacketHandler] = None):
        self.sim = sim
        self._rules: Dict[TrafficClass, ClassifierRule] = {}
        self._default_host = default_host
        self.counters: Dict[TrafficClass, int] = {tc: 0 for tc in TrafficClass}
        self.to_hardware = 0
        self.to_host = 0

    def add_rule(self, rule: ClassifierRule) -> None:
        self._rules[rule.traffic_class] = rule

    def set_offload(self, traffic_class: TrafficClass, enabled: bool) -> None:
        """Enable/disable hardware processing for a class (the shift)."""
        rule = self._rules.get(traffic_class)
        if rule is None:
            raise KeyError(f"no classifier rule for {traffic_class}")
        rule.offload_enabled = enabled

    def offload_enabled(self, traffic_class: TrafficClass) -> bool:
        rule = self._rules.get(traffic_class)
        return bool(rule and rule.offload_enabled)

    def classify(self, packet: Packet) -> None:
        """Steer one packet."""
        self.counters[packet.traffic_class] += 1
        rule = self._rules.get(packet.traffic_class)
        if rule is None:
            if self._default_host is not None:
                self.to_host += 1
                self._default_host(packet)
            return
        if rule.offload_enabled:
            self.to_hardware += 1
            rule.hardware(packet)
        else:
            self.to_host += 1
            rule.host(packet)


class KeyShardRouter:
    """Key-sharded routing for a rack of KVS hosts (§9.4's many-hosts ToR).

    Clients address one logical rack service; the ToR switch consults this
    router (via :meth:`repro.net.switch.Switch.install_dispatch`) to pick
    the host owning the request's key shard.  The shard mapping is
    :func:`key_shard` over the request key, so it agrees with the per-host
    ETC workload split and store preloading.

    Packets without an extractable key (no ``key`` attribute on the
    payload) are spread by CRC32 of their source name so stray traffic
    still lands deterministically on some host.
    """

    def __init__(
        self,
        hosts: Sequence[Optional[str]],
        key_of: Optional[Callable[[Packet], Optional[str]]] = None,
    ):
        if not hosts:
            raise ConfigurationError("router needs at least one host")
        if all(h is None for h in hosts):
            raise ConfigurationError("router needs at least one owned shard")
        #: shard index -> owning host name.  ``None`` marks a shard with no
        #: host in this scenario (a sub-rack of a larger sharded rack);
        #: traffic for such shards is never offered, so routing to one is a
        #: configuration bug and raises.
        self.hosts: List[Optional[str]] = list(hosts)
        self._key_of = key_of or (
            lambda packet: getattr(packet.payload, "key", None)
        )
        #: per-host routed-packet counters (rack telemetry).
        self.per_host: Dict[str, int] = {
            name: 0 for name in self.hosts if name is not None
        }
        self.keyless = 0
        # key -> host memo; the host list is fixed at construction so the
        # mapping never changes, and keyspaces are bounded (ETC preloads
        # them), so the cache cannot grow without bound.
        self._host_cache: Dict[str, str] = {}

    @classmethod
    def for_qnames(cls, hosts: Sequence[str]) -> "KeyShardRouter":
        """Anycast-style DNS steering: hash the query name instead of a
        KVS key.  Every host answers authoritatively for the whole zone
        (the replicas are identical); the qname hash only spreads load,
        the way anycast spreads resolvers across sites (§3.3 at rack
        scale)."""
        return cls(hosts, key_of=lambda packet: getattr(packet.payload, "name", None))

    @property
    def n_shards(self) -> int:
        return len(self.hosts)

    def shard_of(self, key: str) -> int:
        return key_shard(key, self.n_shards)

    def host_for_key(self, key: str) -> str:
        host = self.hosts[self.shard_of(key)]
        if host is None:
            raise ConfigurationError(
                f"no host owns shard {self.shard_of(key)} for key {key!r}"
            )
        return host

    def route(self, packet: Packet) -> str:
        """The switch-dispatch chooser: next-hop host name for a packet."""
        key = self._key_of(packet)
        if key is None:
            self.keyless += 1
            key = packet.src
        host = self._host_cache.get(key)
        if host is None:
            host = self.hosts[key_shard(key, self.n_shards)]
            if host is None:
                raise ConfigurationError(
                    f"no host owns shard {key_shard(key, self.n_shards)} "
                    f"for key {key!r}"
                )
            self._host_cache[key] = host
        self.per_host[host] += 1
        return host

    def reassign(self, shard_index: int, host: Optional[str]) -> Optional[str]:
        """Move a shard to a different owning host (fabric steering).

        Returns the previous owner.  Invalidates the key->host memo (the
        ownership mapping is no longer fixed) and registers the new host
        in the per-host counters.  In a multi-switch fabric the same
        reassignment must be applied to every switch's router instance so
        all hops keep agreeing — see
        :meth:`repro.net.topology.Fabric.install_dispatch`.
        """
        if not 0 <= shard_index < self.n_shards:
            raise ConfigurationError(
                f"shard_index {shard_index} out of range [0, {self.n_shards})"
            )
        previous = self.hosts[shard_index]
        self.hosts[shard_index] = host
        if host is not None and host not in self.per_host:
            self.per_host[host] = 0
        self._host_cache.clear()
        return previous


class RouterFleet:
    """One logical service's routers across every switch of a fabric.

    In a leaf-spine fabric each switch re-resolves a dispatched logical
    destination independently, so each ToR and the spine owns its own
    :class:`KeyShardRouter` instance (sharing the initial owner list).
    The fleet keeps them in lock-step — :meth:`reassign` applies a shard
    move to every instance — and exposes aggregated telemetry using the
    transit identity (a cross-rack packet is dispatched at its ingress
    ToR, the spine, and its egress ToR; a same-rack packet only at its
    ToR): ``sum(ToR routers) - spine router`` counts each request once.
    """

    def __init__(
        self,
        tor_routers: Dict[str, "KeyShardRouter"],
        spine_router: Optional["KeyShardRouter"] = None,
    ):
        if not tor_routers:
            raise ConfigurationError("a router fleet needs at least one ToR router")
        self._tor_routers = dict(tor_routers)
        self._spine_router = spine_router
        self._primary = next(iter(self._tor_routers.values()))

    @property
    def routers(self) -> List["KeyShardRouter"]:
        routers = list(self._tor_routers.values())
        if self._spine_router is not None:
            routers.append(self._spine_router)
        return routers

    @property
    def owners(self) -> List[Optional[str]]:
        """shard index -> owning host (all instances agree)."""
        return list(self._primary.hosts)

    @property
    def n_shards(self) -> int:
        return self._primary.n_shards

    def shards_of(self, host: str) -> List[int]:
        return [i for i, h in enumerate(self._primary.hosts) if h == host]

    @property
    def per_host(self) -> Dict[str, int]:
        """Requests served per host (each offered request counted once)."""
        totals: Dict[str, int] = {}
        for router in self._tor_routers.values():
            for host, count in router.per_host.items():
                totals[host] = totals.get(host, 0) + count
        if self._spine_router is not None:
            for host, count in self._spine_router.per_host.items():
                totals[host] = totals.get(host, 0) - count
        return totals

    @property
    def crossrack_per_host(self) -> Dict[str, int]:
        """Requests that crossed racks, per serving host (spine view)."""
        if self._spine_router is None:
            return {}
        return dict(self._spine_router.per_host)

    def reassign(self, shard_index: int, host: Optional[str]) -> Optional[str]:
        """Move a shard on every switch's router; returns the old owner."""
        previous = None
        for router in self.routers:
            previous = router.reassign(shard_index, host)
        return previous
