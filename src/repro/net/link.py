"""Point-to-point links with serialization + propagation delay and faults.

Links model what matters for the paper's experiments: in-rack propagation on
the order of a microsecond, serialization at 10GE, and (for protocol
robustness tests) loss / duplication / reordering fault injection used by the
Paxos property tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..units import gbit_per_s
from ..sim import Simulator
from .node import Node
from .packet import Packet


def serialization_time_us(size_bytes: float, bandwidth_bps: float) -> float:
    """Analytic serialization delay: time to put ``size_bytes`` on a wire
    of ``bandwidth_bps`` — the same expression :meth:`Link.serialization_us`
    charges per packet, exposed for the steady-state fast path."""
    if bandwidth_bps <= 0:
        raise ConfigurationError("bandwidth_bps must be > 0")
    return size_bytes * 8 / bandwidth_bps * 1e6


def fifo_wait_us(
    offered_pps: float, size_bytes: float, bandwidth_bps: float
) -> float:
    """Mean queueing wait (us) of a rate-constant flow through one FIFO
    output queue (:class:`Link` with ``queueing=True``).

    At a constant offered rate the queue is an M/D/1 station —
    deterministic service (fixed serialization time ``S``), near-Poisson
    arrivals from many independent clients — whose mean wait is
    ``S * rho / (2 * (1 - rho))`` at utilization ``rho = offered_pps * S``.
    The approximation degrades near saturation; utilization is clamped
    just below 1 so callers get a large-but-finite wait instead of a pole,
    and the fast-path tolerance gate is what enforces the validity
    envelope (``rho`` comfortably below 1).
    """
    if offered_pps < 0:
        raise ConfigurationError("offered_pps must be >= 0")
    service_s = serialization_time_us(size_bytes, bandwidth_bps) / 1e6
    rho = min(offered_pps * service_s, 0.999)
    return service_s * rho / (2.0 * (1.0 - rho)) * 1e6


@dataclass
class LinkFaults:
    """Fault-injection knobs, all probabilities in [0, 1]."""

    loss: float = 0.0
    duplicate: float = 0.0
    #: extra random delay (us, uniform in [0, reorder_jitter_us]) causing
    #: effective reordering between back-to-back packets.
    reorder_jitter_us: float = 0.0

    def validate(self) -> None:
        for field_name in ("loss", "duplicate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{field_name} must be in [0,1], got {value}")
        if self.reorder_jitter_us < 0:
            raise ConfigurationError("reorder_jitter_us must be >= 0")


class Link:
    """A unidirectional link from anywhere to ``dst``.

    ``latency_us`` is one-way propagation; ``bandwidth_bps`` adds
    serialization delay (size / bandwidth).  Statistics count delivered,
    lost, and duplicated packets.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Node,
        latency_us: float = 1.0,
        bandwidth_bps: float = gbit_per_s(10.0),
        faults: Optional[LinkFaults] = None,
        rng: Optional[random.Random] = None,
        name: str = "",
        queueing: bool = False,
    ):
        if latency_us < 0:
            raise ConfigurationError("latency_us must be >= 0")
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be > 0")
        self.sim = sim
        self.dst = dst
        self.latency_us = latency_us
        self.bandwidth_bps = bandwidth_bps
        self.faults = faults or LinkFaults()
        self.faults.validate()
        if (self.faults.loss or self.faults.duplicate or self.faults.reorder_jitter_us) and rng is None:
            raise ConfigurationError("fault injection requires an rng")
        if queueing and (
            self.faults.loss or self.faults.duplicate or self.faults.reorder_jitter_us
        ):
            raise ConfigurationError(
                "queueing and fault injection are mutually exclusive on one link"
            )
        self._rng = rng
        self.name = name or f"link->{dst.name}"
        #: FIFO output-queue contention: each packet occupies the wire for
        #: its serialization time and later packets wait their turn.  This
        #: is what makes an oversubscribed fabric uplink actually queue
        #: (raising cross-rack tail latency) rather than just serializing
        #: each packet independently.  Off by default: in-rack links keep
        #: the contention-free model the paper figures were calibrated on.
        self.queueing = queueing
        self._busy_until_us = 0.0
        self.queued_us = 0.0
        self.max_queue_us = 0.0
        self.delivered = 0
        self.lost = 0
        self.duplicated = 0

    def serialization_us(self, packet: Packet) -> float:
        """Time to put ``packet`` on the wire at this link's bandwidth."""
        # keep this expression operation-for-operation identical to
        # serialization_time_us: event times must not drift between the
        # DES and the analytic fast path's description of it
        return packet.size_bytes * 8 / self.bandwidth_bps * 1e6

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` toward ``dst`` (subject to faults)."""
        faults = self.faults
        if faults.loss or faults.duplicate or faults.reorder_jitter_us:
            if faults.loss and self._rng.random() < faults.loss:
                self.lost += 1
                return
            self._deliver(packet)
            if faults.duplicate and self._rng.random() < faults.duplicate:
                self.duplicated += 1
                self._deliver(packet.copy())
            return
        if self.queueing:
            self._send_queued(packet)
            return
        # fault-free hot path: _deliver flattened in (the delay expression
        # must stay operation-for-operation identical to serialization_us
        # so event times are bit-identical across code paths)
        packet.hops += 1
        self.delivered += 1
        self.sim.schedule_call(
            self.latency_us + packet.size_bytes * 8 / self.bandwidth_bps * 1e6,
            self.dst.receive,
            packet,
        )

    def _send_queued(self, packet: Packet) -> None:
        # FIFO output queue: the wire is busy until the previous packet's
        # serialization finishes; propagation overlaps (pipelining).
        now = self.sim.now
        start = self._busy_until_us
        if start < now:
            start = now
        wait = start - now
        serialization = packet.size_bytes * 8 / self.bandwidth_bps * 1e6
        self._busy_until_us = start + serialization
        if wait > 0.0:
            self.queued_us += wait
            if wait > self.max_queue_us:
                self.max_queue_us = wait
        packet.hops += 1
        self.delivered += 1
        self.sim.schedule_call(
            wait + serialization + self.latency_us, self.dst.receive, packet
        )

    def _deliver(self, packet: Packet) -> None:
        # Hot path: one call per simulated packet.  schedule_call carries
        # the packet in the heap entry itself — no Event, no name string,
        # no per-delivery closure.
        delay = (
            self.latency_us
            + packet.size_bytes * 8 / self.bandwidth_bps * 1e6
        )
        if self.faults.reorder_jitter_us:
            delay += self._rng.uniform(0.0, self.faults.reorder_jitter_us)
        packet.hops += 1
        self.delivered += 1
        self.sim.schedule_call(delay, self.dst.receive, packet)
