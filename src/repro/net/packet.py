"""Packets.

A :class:`Packet` is the unit moved through the simulated network: a UDP
datagram with addressing, a traffic class used by packet classifiers (the
LaKe/Emu classifier separates "application" traffic from "normal" NIC
traffic, §3.1/§3.3), and an application payload object.

Payloads are plain Python objects (e.g. :class:`repro.apps.paxos.messages.Phase2A`).
``Packet.copy()`` performs a shallow copy with a fresh identity, which is
what link-level duplication fault injection uses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

_packet_ids = itertools.count(1)


class TrafficClass(enum.Enum):
    """Coarse traffic classes understood by packet classifiers."""

    NORMAL = "normal"       # plain NIC traffic, always passed to the host
    MEMCACHED = "memcached"  # KVS queries (LaKe classifier, §3.1)
    PAXOS = "paxos"          # consensus messages (P4xos)
    DNS = "dns"              # DNS queries (Emu DNS classifier, §3.3)


@dataclass
class Packet:
    """A UDP-style datagram.

    ``size_bytes`` includes headers; it feeds link serialization delay and
    line-rate math.  ``created_us`` is stamped by the sender and used by
    latency recorders at the receiver.
    """

    src: str
    dst: str
    traffic_class: TrafficClass
    payload: Any = None
    size_bytes: int = 128
    created_us: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: UDP destination port; applications register on ports.
    dport: int = 0
    hops: int = 0

    def copy(self) -> "Packet":
        """A duplicate with a fresh packet id (used by duplication faults)."""
        return replace(self, packet_id=next(_packet_ids))

    def age_us(self, now: float) -> float:
        """Time since the packet was created."""
        return now - self.created_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst}:{self.dport} "
            f"{self.traffic_class.value} {self.size_bytes}B)"
        )


#: Typical application packet sizes (bytes, with headers).  The memcached
#: figure matches LaKe's ~13Mpps 10GE line rate for small queries (§4.2).
DEFAULT_PACKET_SIZES = {
    TrafficClass.MEMCACHED: 70,
    TrafficClass.PAXOS: 102,
    TrafficClass.DNS: 90,
    TrafficClass.NORMAL: 256,
}


def make_packet(
    src: str,
    dst: str,
    traffic_class: TrafficClass,
    payload: Any = None,
    now: float = 0.0,
    dport: int = 0,
    size_bytes: Optional[int] = None,
) -> Packet:
    """Convenience constructor applying the default per-class packet size."""
    if size_bytes is None:
        size_bytes = DEFAULT_PACKET_SIZES[traffic_class]
    return Packet(
        src=src,
        dst=dst,
        traffic_class=traffic_class,
        payload=payload,
        size_bytes=size_bytes,
        created_us=now,
        dport=dport,
    )
