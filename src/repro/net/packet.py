"""Packets.

A :class:`Packet` is the unit moved through the simulated network: a UDP
datagram with addressing, a traffic class used by packet classifiers (the
LaKe/Emu classifier separates "application" traffic from "normal" NIC
traffic, §3.1/§3.3), and an application payload object.

Payloads are plain Python objects (e.g. :class:`repro.apps.paxos.messages.Phase2A`).
``Packet.copy()`` performs a shallow copy with a fresh identity, which is
what link-level duplication fault injection uses.

Packets are the hottest allocation in a DES run (one per request plus one
per reply).  The class is ``__slots__``-based and backed by a free-list:
:func:`release_packet` returns a dead packet to the pool and
:func:`make_packet` (and :meth:`Packet.copy`) reuse pooled shells instead
of allocating.  Release is **opt-in at well-understood lifecycle ends**
(e.g. a client dropping a processed reply) — a packet that might still be
referenced must simply not be released; the pool never reclaims on its
own.  Packet identity (``packet_id``) stays unique across reuse: a
recycled shell is re-stamped from the same counter as a fresh one.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, List, Optional

_packet_ids = itertools.count(1)


class TrafficClass(enum.Enum):
    """Coarse traffic classes understood by packet classifiers."""

    NORMAL = "normal"       # plain NIC traffic, always passed to the host
    MEMCACHED = "memcached"  # KVS queries (LaKe classifier, §3.1)
    PAXOS = "paxos"          # consensus messages (P4xos)
    DNS = "dns"              # DNS queries (Emu DNS classifier, §3.3)

    # Members are singletons and enum equality is identity, so the identity
    # hash is consistent — and C-speed, where Enum.__hash__ is a Python call.
    # Classifier/switch counters key dicts by TrafficClass on every packet.
    __hash__ = object.__hash__


class Packet:
    """A UDP-style datagram.

    ``size_bytes`` includes headers; it feeds link serialization delay and
    line-rate math.  ``created_us`` is stamped by the sender and used by
    latency recorders at the receiver.
    """

    __slots__ = (
        "src",
        "dst",
        "traffic_class",
        "payload",
        "size_bytes",
        "created_us",
        "packet_id",
        "dport",
        "hops",
        "_pooled",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        traffic_class: TrafficClass,
        payload: Any = None,
        size_bytes: int = 128,
        created_us: float = 0.0,
        packet_id: Optional[int] = None,
        dport: int = 0,
        hops: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.traffic_class = traffic_class
        self.payload = payload
        self.size_bytes = size_bytes
        self.created_us = created_us
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.dport = dport
        self.hops = hops
        self._pooled = False

    def copy(self) -> "Packet":
        """A duplicate with a fresh packet id (used by duplication faults)."""
        return make_packet(
            src=self.src,
            dst=self.dst,
            traffic_class=self.traffic_class,
            payload=self.payload,
            now=self.created_us,
            dport=self.dport,
            size_bytes=self.size_bytes,
            hops=self.hops,
        )

    def age_us(self, now: float) -> float:
        """Time since the packet was created."""
        return now - self.created_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst}:{self.dport} "
            f"{self.traffic_class.value} {self.size_bytes}B)"
        )


#: Typical application packet sizes (bytes, with headers).  The memcached
#: figure matches LaKe's ~13Mpps 10GE line rate for small queries (§4.2).
DEFAULT_PACKET_SIZES = {
    TrafficClass.MEMCACHED: 70,
    TrafficClass.PAXOS: 102,
    TrafficClass.DNS: 90,
    TrafficClass.NORMAL: 256,
}

#: The packet free-list.  Global (like the id counter): a run's request and
#: reply shells cycle through it, so steady state allocates no new packets.
_pool: List[Packet] = []

#: Cap the pool so a burst does not pin memory for the rest of the process.
_POOL_MAX = 8192


def make_packet(
    src: str,
    dst: str,
    traffic_class: TrafficClass,
    payload: Any = None,
    now: float = 0.0,
    dport: int = 0,
    size_bytes: Optional[int] = None,
    hops: int = 0,
) -> Packet:
    """Pooled constructor applying the default per-class packet size."""
    if size_bytes is None:
        size_bytes = DEFAULT_PACKET_SIZES[traffic_class]
    if _pool:
        packet = _pool.pop()
        packet.src = src
        packet.dst = dst
        packet.traffic_class = traffic_class
        packet.payload = payload
        packet.size_bytes = size_bytes
        packet.created_us = now
        packet.packet_id = next(_packet_ids)
        packet.dport = dport
        packet.hops = hops
        packet._pooled = False
        return packet
    return Packet(
        src=src,
        dst=dst,
        traffic_class=traffic_class,
        payload=payload,
        size_bytes=size_bytes,
        created_us=now,
        dport=dport,
        hops=hops,
    )


def release_packet(packet: Packet) -> None:
    """Return a dead packet's shell to the pool.

    Only call at a lifecycle end where no reference can remain (a client
    that has fully processed a reply, a sink that drops a datagram).
    Double release is a guarded no-op; the payload reference is cleared so
    the pool does not keep application objects alive.
    """
    if packet._pooled:
        return
    packet._pooled = True
    packet.payload = None
    if len(_pool) < _POOL_MAX:
        _pool.append(packet)


def pool_size() -> int:
    """Current free-list occupancy (observability/testing)."""
    return len(_pool)
