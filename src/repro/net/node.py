"""Network node base class.

A :class:`Node` is anything with a name that can receive packets: servers,
switches, hardware devices, and test sinks.  Delivery is always via
:meth:`receive`; links call it after their propagation delay.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim import Simulator
from .packet import Packet


class Node:
    """A named packet endpoint attached to a simulator."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._egress: Optional[Callable[[Packet], None]] = None
        self.rx_packets = 0
        self.tx_packets = 0

    # -- wiring ---------------------------------------------------------

    def attach_egress(self, send: Callable[[Packet], None]) -> None:
        """Set the function used to transmit packets (usually Link.send)."""
        self._egress = send

    def send(self, packet: Packet) -> None:
        """Transmit a packet through the attached egress."""
        if self._egress is None:
            raise RuntimeError(f"node {self.name!r} has no egress attached")
        self.tx_packets += 1
        self._egress(packet)

    # -- delivery --------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Deliver a packet to this node.  Subclasses override."""
        self.rx_packets += 1


class SinkNode(Node):
    """A node that records everything it receives (for tests)."""

    def __init__(self, sim: Simulator, name: str = "sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet: Packet) -> None:
        super().receive(packet)
        self.received.append(packet)


class CallbackNode(Node):
    """A node that forwards received packets to a callback (for tests and
    simple composition)."""

    def __init__(self, sim: Simulator, name: str, on_packet: Callable[[Packet], None]):
        super().__init__(sim, name)
        self._on_packet = on_packet

    def receive(self, packet: Packet) -> None:
        super().receive(packet)
        self._on_packet(packet)
