"""Topology builder: nodes, switches and bidirectional wiring.

Experiments build small rack-scale topologies: clients, a ToR switch, the
server under test, and (for Paxos) acceptor/learner nodes.  ``Topology``
keeps the wiring in one place and gives tests a convenient registry.
"""

from __future__ import annotations

from typing import Dict, Optional

import random

from ..errors import ConfigurationError
from ..units import gbit_per_s
from ..sim import Simulator
from .link import Link, LinkFaults
from .node import Node
from .switch import Switch


class Topology:
    """A registry of nodes plus helpers to wire them together."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._nodes: Dict[str, Node] = {}

    # -- registry -----------------------------------------------------------

    def add(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> Dict[str, Node]:
        return dict(self._nodes)

    # -- wiring ---------------------------------------------------------------

    def link(
        self,
        src_name: str,
        dst_name: str,
        latency_us: float = 1.0,
        bandwidth_bps: float = gbit_per_s(10.0),
        faults: Optional[LinkFaults] = None,
        rng: Optional[random.Random] = None,
    ) -> Link:
        """Create a unidirectional link src -> dst and attach it.

        If ``src`` is a :class:`Switch` the link becomes a switch port;
        otherwise it becomes the node's egress.
        """
        src = self.node(src_name)
        dst = self.node(dst_name)
        link = Link(
            self.sim,
            dst,
            latency_us=latency_us,
            bandwidth_bps=bandwidth_bps,
            faults=faults,
            rng=rng,
            name=f"{src_name}->{dst_name}",
        )
        if isinstance(src, Switch):
            src.connect(dst, link)
        else:
            src.attach_egress(link.send)
        return link

    def connect_via_switch(
        self,
        switch_name: str,
        node_name: str,
        latency_us: float = 1.0,
        bandwidth_bps: float = gbit_per_s(10.0),
        faults: Optional[LinkFaults] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Bidirectional attachment of a node to a switch (two links)."""
        self.link(
            node_name, switch_name,
            latency_us=latency_us, bandwidth_bps=bandwidth_bps,
            faults=faults, rng=rng,
        )
        self.link(
            switch_name, node_name,
            latency_us=latency_us, bandwidth_bps=bandwidth_bps,
            faults=faults, rng=rng,
        )


def star_topology(
    sim: Simulator,
    switch: Switch,
    nodes,
    latency_us: float = 1.0,
    bandwidth_bps: float = gbit_per_s(10.0),
) -> Topology:
    """Wire ``nodes`` to ``switch`` in a star (typical ToR layout)."""
    topo = Topology(sim)
    topo.add(switch)
    for node in nodes:
        topo.add(node)
        topo.connect_via_switch(
            switch.name, node.name, latency_us=latency_us, bandwidth_bps=bandwidth_bps
        )
    return topo
