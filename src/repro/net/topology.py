"""Topology builder: nodes, switches, racks and leaf-spine fabrics.

Experiments build small rack-scale topologies: clients, a ToR switch, the
server under test, and (for Paxos) acceptor/learner nodes.  ``Topology``
keeps the wiring in one place and gives tests a convenient registry.

Datacenter-scale scenarios build a :class:`Fabric` instead: per-rack ToR
switches under one aggregation/spine switch, with oversubscribed
(queueing) uplinks carrying cross-rack traffic.  The fabric mirrors the
switch control plane across every switch — redirect rules and per-packet
dispatchers are installed fleet-wide, and per-(class, logical-dst)
counters are aggregated across ToRs — which is exactly the view the
paper's §9.1 *centralized* controller needs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import random

from ..errors import ConfigurationError
from ..naming import rack_qualified
from ..units import gbit_per_s
from ..sim import Simulator
from .link import Link, LinkFaults
from .node import Node
from .packet import Packet, TrafficClass
from .switch import ForwardingRule, Switch


class Topology:
    """A registry of nodes plus helpers to wire them together."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._nodes: Dict[str, Node] = {}

    # -- registry -----------------------------------------------------------

    def add(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> Dict[str, Node]:
        return dict(self._nodes)

    # -- wiring ---------------------------------------------------------------

    def link(
        self,
        src_name: str,
        dst_name: str,
        latency_us: float = 1.0,
        bandwidth_bps: float = gbit_per_s(10.0),
        faults: Optional[LinkFaults] = None,
        rng: Optional[random.Random] = None,
        queueing: bool = False,
    ) -> Link:
        """Create a unidirectional link src -> dst and attach it.

        If ``src`` is a :class:`Switch` the link becomes a switch port;
        otherwise it becomes the node's egress.
        """
        src = self.node(src_name)
        dst = self.node(dst_name)
        link = Link(
            self.sim,
            dst,
            latency_us=latency_us,
            bandwidth_bps=bandwidth_bps,
            faults=faults,
            rng=rng,
            name=f"{src_name}->{dst_name}",
            queueing=queueing,
        )
        if isinstance(src, Switch):
            src.connect(dst, link)
        else:
            src.attach_egress(link.send)
        return link

    def connect_via_switch(
        self,
        switch_name: str,
        node_name: str,
        latency_us: float = 1.0,
        bandwidth_bps: float = gbit_per_s(10.0),
        faults: Optional[LinkFaults] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Bidirectional attachment of a node to a switch (two links)."""
        self.link(
            node_name, switch_name,
            latency_us=latency_us, bandwidth_bps=bandwidth_bps,
            faults=faults, rng=rng,
        )
        self.link(
            switch_name, node_name,
            latency_us=latency_us, bandwidth_bps=bandwidth_bps,
            faults=faults, rng=rng,
        )


class Fabric:
    """A built leaf-spine fabric: per-rack ToRs under one spine switch.

    Packets never carry fabric state: a switch re-resolves the (possibly
    logical) destination at every hop, so the fabric installs each
    redirect rule and each per-packet dispatcher on *every* switch — the
    ingress ToR resolves a logical service to a concrete host, and the
    spine/egress ToR re-resolve the same way (all choosers share owner
    state, so every hop agrees).  Static routes do the rest: the spine
    routes each host via its rack's ToR, and each ToR default-routes
    unknown destinations up its spine uplink.

    Control-plane reads aggregate with the transit identity: a same-rack
    packet is seen by one ToR and no spine; a cross-rack packet is seen by
    its ingress ToR, the spine (exactly once), and its egress ToR.  So
    ``sum(ToR counters) - spine counter`` counts each *offered* packet
    exactly once, and the spine counter alone is the cross-rack subset —
    both views are exposed (``logical_count`` vs ``spine_logical_count``).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        spine: Switch,
        tors: Dict[str, Switch],
        host_latency_us: float = 1.0,
        host_bandwidth_bps: float = gbit_per_s(10.0),
    ):
        self.sim = sim
        self.topology = topology
        self.spine = spine
        self._tors = tors
        self.host_latency_us = host_latency_us
        self.host_bandwidth_bps = host_bandwidth_bps
        #: rack of each connected host (fully-qualified name -> rack).
        self._host_racks: Dict[str, str] = {}

    # -- structure ---------------------------------------------------------

    @property
    def racks(self) -> Tuple[str, ...]:
        return tuple(self._tors)

    @property
    def tors(self) -> Dict[str, Switch]:
        return dict(self._tors)

    @property
    def switches(self) -> List[Switch]:
        return [self.spine, *self._tors.values()]

    def tor(self, rack: str) -> Switch:
        try:
            return self._tors[rack]
        except KeyError:
            raise ConfigurationError(
                f"unknown rack {rack!r}; fabric racks are {list(self._tors)}"
            ) from None

    def rack_of(self, host_name: str) -> str:
        try:
            return self._host_racks[host_name]
        except KeyError:
            raise ConfigurationError(
                f"{host_name!r} is not connected to this fabric"
            ) from None

    @property
    def host_racks(self) -> Dict[str, str]:
        return dict(self._host_racks)

    def connect_host(
        self,
        rack: str,
        node: Node,
        latency_us: Optional[float] = None,
        bandwidth_bps: Optional[float] = None,
    ) -> None:
        """Wire ``node`` (already added to the topology) into ``rack``.

        Attaches the node to the rack's ToR bidirectionally and teaches
        the spine which ToR owns it; the ToR's default route (installed at
        build time) already points up the uplink.
        """
        tor = self.tor(rack)
        self.topology.connect_via_switch(
            tor.name,
            node.name,
            latency_us=self.host_latency_us if latency_us is None else latency_us,
            bandwidth_bps=(
                self.host_bandwidth_bps if bandwidth_bps is None else bandwidth_bps
            ),
        )
        self.spine.add_route(node.name, via=tor.name)
        self._host_racks[node.name] = rack

    # -- mirrored control plane -------------------------------------------

    def install_rule(self, rule: ForwardingRule) -> None:
        """Install a redirect rule on every switch in the fabric.

        This is the §9.2 leader shift at datacenter scale: the centralized
        controller rewrites the logical leader's next hop fleet-wide, and
        ToRs without a local port to the new leader forward via the spine.
        """
        for switch in self.switches:
            switch.install_rule(rule)

    def remove_rule(
        self, traffic_class: TrafficClass, logical_dst: str
    ) -> Optional[ForwardingRule]:
        removed = None
        for switch in self.switches:
            got = switch.remove_rule(traffic_class, logical_dst)
            removed = removed or got
        return removed

    def install_dispatch(
        self,
        traffic_class: TrafficClass,
        logical_dst: str,
        chooser_factory: Callable[[], Callable[[Packet], str]],
    ) -> Dict[str, Callable[[Packet], str]]:
        """Install one dispatcher per switch for a logical service address.

        ``chooser_factory`` is called once per switch so each hop owns its
        own chooser instance (per-switch routed counters stay meaningful);
        steering updates must be applied to all returned choosers — see
        :meth:`repro.net.classifier.KeyShardRouter.reassign`.  Returns
        ``{switch_name: chooser}``.
        """
        choosers: Dict[str, Callable[[Packet], str]] = {}
        for switch in self.switches:
            chooser = chooser_factory()
            switch.install_dispatch(traffic_class, logical_dst, chooser)
            choosers[switch.name] = chooser
        return choosers

    # -- aggregated counters ----------------------------------------------

    def logical_count(self, traffic_class: TrafficClass, logical_dst: str) -> int:
        """Offered packets for (class, logical-dst), fleet-wide.

        ``sum(ToRs) - spine``: a cross-rack packet hits two ToRs and the
        spine once, a same-rack packet one ToR and no spine, so the
        difference counts each offered packet exactly once — the
        fleet-wide rate a centralized controller keys its decisions on.
        """
        return sum(
            tor.logical_count(traffic_class, logical_dst)
            for tor in self._tors.values()
        ) - self.spine.logical_count(traffic_class, logical_dst)

    def rack_logical_counts(
        self, traffic_class: TrafficClass, logical_dst: str
    ) -> Dict[str, int]:
        """Packets for (class, logical-dst) seen at each rack's ToR.

        Raw per-ToR telemetry: a rack's count includes both its own
        clients' offered load and cross-rack arrivals handed down from
        the spine.  For per-host *serving* load use the dispatch routers'
        ``per_host`` counters instead.
        """
        return {
            rack: tor.logical_count(traffic_class, logical_dst)
            for rack, tor in self._tors.items()
        }

    def spine_logical_count(
        self, traffic_class: TrafficClass, logical_dst: str
    ) -> int:
        """Cross-rack packets for (class, logical-dst): only traffic that
        left its ingress rack transits the spine."""
        return self.spine.logical_count(traffic_class, logical_dst)

    @property
    def class_counters(self) -> Dict[TrafficClass, int]:
        """Per-class offered packets fleet-wide (``sum(ToRs) - spine``)."""
        totals = {tc: 0 for tc in TrafficClass}
        for tor in self._tors.values():
            for tc, count in tor.class_counters.items():
                totals[tc] += count
        for tc, count in self.spine.class_counters.items():
            totals[tc] -= count
        return totals

    @property
    def dropped_no_route(self) -> int:
        return sum(switch.dropped_no_route for switch in self.switches)

    @property
    def uplinks(self) -> List[Link]:
        """The oversubscribed ToR->spine and spine->ToR links."""
        links: List[Link] = []
        for tor in self._tors.values():
            links.append(tor.ports[self.spine.name])
            links.append(self.spine.ports[tor.name])
        return links


def uplink_effective_bps(
    uplink_bandwidth_bps: float, oversubscription: float
) -> float:
    """The effective per-direction bandwidth of an oversubscribed uplink —
    the single analytic parameter the steady fast path needs from the
    fabric's queueing model.  Kept as the one shared expression so
    :func:`build_fabric`'s DES links and the analytic model can never
    disagree about what a 4:1 oversubscribed 40G uplink serves."""
    if uplink_bandwidth_bps <= 0:
        raise ConfigurationError(
            f"uplink bandwidth must be > 0, got {uplink_bandwidth_bps}"
        )
    if oversubscription < 1.0:
        raise ConfigurationError(
            f"oversubscription must be >= 1, got {oversubscription}"
        )
    return uplink_bandwidth_bps / oversubscription


def build_fabric(
    sim: Simulator,
    rack_names: Sequence[str],
    topology: Optional[Topology] = None,
    spine_name: str = "spine",
    tor_name: str = "tor",
    host_latency_us: float = 1.0,
    host_bandwidth_bps: float = gbit_per_s(10.0),
    uplink_latency_us: float = 5.0,
    uplink_bandwidth_bps: float = gbit_per_s(40.0),
    oversubscription: float = 1.0,
) -> Fabric:
    """Build a leaf-spine fabric skeleton: ToR per rack + spine + uplinks.

    Each rack's ToR is named ``<rack>/<tor_name>`` (so racks can share the
    bare spelling), wired to the spine both ways at
    ``uplink_bandwidth_bps / oversubscription`` effective bandwidth with
    FIFO queueing — an oversubscribed uplink genuinely queues under load
    instead of serializing packets independently.  Cross-rack packets pay
    the uplink latency twice (up, then down).  Hosts are attached later
    via :meth:`Fabric.connect_host`.
    """
    if not rack_names:
        raise ConfigurationError("a fabric needs at least one rack")
    if len(set(rack_names)) != len(rack_names):
        raise ConfigurationError(f"duplicate rack names in {list(rack_names)}")
    effective_bps = uplink_effective_bps(uplink_bandwidth_bps, oversubscription)
    topo = topology if topology is not None else Topology(sim)
    spine = Switch(sim, spine_name)
    topo.add(spine)
    tors: Dict[str, Switch] = {}
    for rack in rack_names:
        tor = Switch(sim, rack_qualified(rack, tor_name))
        topo.add(tor)
        topo.link(
            tor.name, spine_name,
            latency_us=uplink_latency_us, bandwidth_bps=effective_bps,
            queueing=True,
        )
        topo.link(
            spine_name, tor.name,
            latency_us=uplink_latency_us, bandwidth_bps=effective_bps,
            queueing=True,
        )
        tor.set_default_route(spine_name)
        tors[rack] = tor
    return Fabric(
        sim, topo, spine, tors,
        host_latency_us=host_latency_us,
        host_bandwidth_bps=host_bandwidth_bps,
    )


def star_topology(
    sim: Simulator,
    switch: Switch,
    nodes,
    latency_us: float = 1.0,
    bandwidth_bps: float = gbit_per_s(10.0),
) -> Topology:
    """Wire ``nodes`` to ``switch`` in a star (typical ToR layout)."""
    topo = Topology(sim)
    topo.add(switch)
    for node in nodes:
        topo.add(node)
        topo.connect_via_switch(
            switch.name, node.name, latency_us=latency_us, bandwidth_bps=bandwidth_bps
        )
    return topo
