"""Network substrate: packets, links, switches, classifiers.

This package models the data-center plumbing the paper's applications run
over: UDP-style packets (all three case-study applications are UDP based,
§3.4), point-to-point links with latency/bandwidth and fault injection, and
a programmable switch whose forwarding table the Paxos on-demand controller
rewrites (§9.2).
"""

from .packet import Packet, TrafficClass
from .link import Link, LinkFaults
from .node import Node
from .switch import ForwardingRule, Switch
from .classifier import (
    PacketClassifier,
    ClassifierRule,
    KeyShardRouter,
    RouterFleet,
    key_shard,
)
from .topology import Fabric, Topology, build_fabric, star_topology

__all__ = [
    "Fabric",
    "build_fabric",
    "Packet",
    "TrafficClass",
    "Link",
    "LinkFaults",
    "Node",
    "ForwardingRule",
    "Switch",
    "PacketClassifier",
    "ClassifierRule",
    "KeyShardRouter",
    "RouterFleet",
    "key_shard",
    "Topology",
    "star_topology",
]
