"""Paper-derived calibration constants — the single source of truth.

Every constant in this module carries the paper section it was taken from.
Where the paper gives only anchors (idle and peak power, a crossover load)
we pick the simplest curve through those anchors; the chosen shape is
documented next to the constant.  Nothing elsewhere in the package hardcodes
a wattage or a capacity: models read this module.

Known internal tensions in the paper are reproduced as faithfully as
possible and noted here:

* §9.2 quotes "about 5W gap" between a plain NIC and LaKe held in reset with
  clock gating, while the §5 component arithmetic (memories 10.8W with reset
  saving 40%, logic 2.2W with clock gating saving <1W) yields ~7.9W.  We keep
  the §5 component numbers, so our gated-LaKe gap is ~7.9W; EXPERIMENTS.md
  records the deviation.
* Figure 4's y-axis (0–30W) is consistent with standalone-card measurements
  plus an idle server drawn without NIC; §4.2's 39W idle includes the NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import mpps

# ===========================================================================
# Servers (§4.1, §4.2, §5.4, §7).
# ===========================================================================

#: §4.2: "the power consumption of the server while idle or under low
#: utilization is just 39W" — Intel Core i7-6700K, 4 cores @ 4GHz, with NIC.
I7_IDLE_W = 39.0

#: Derived: idle server minus the NIC share below (used for Figure 4's
#: "Server no cards" bar, which is drawn without any NIC installed).
I7_IDLE_NO_NIC_W = 36.0

#: NIC wall-power shares of the idle figure above.  The paper does not give
#: per-NIC watts; 3W (Intel X520) and 3W (Mellanox CX311A) are typical
#: 10GE-NIC idle draws and keep the 39W idle anchor for both setups.
NIC_INTEL_X520_IDLE_W = 3.0
NIC_MELLANOX_CX311A_IDLE_W = 3.0

#: §4.2: memcached on the i7 peaks at "approximately 1Mpps" (Mellanox NIC).
MEMCACHED_PEAK_PPS_MELLANOX = mpps(1.0)

#: §4.2: "the maximum throughput the server achieves using the Intel NIC is
#: lower" — we use 0.8Mpps.
MEMCACHED_PEAK_PPS_INTEL = mpps(0.8)

#: Peak wall power of the i7 running memcached at saturation (all 4 cores
#: pegged).  Figure 3(a) tops out around 115W.
I7_MEMCACHED_PEAK_W = 115.0

#: Software power-curve exponents: P(u) = idle + (peak-idle) * u**alpha.
#: alpha < 1 (concave, power jumps at low load — §7 observes exactly this)
#: for the Mellanox setup places the LaKe crossover at ~80Kpps (§4.2);
#: alpha > 1 for the Intel setup moves it to ~300Kpps (§4.2: "the crossing
#: point moved to over 300Kpps").
MEMCACHED_POWER_ALPHA_MELLANOX = 0.53
MEMCACHED_POWER_ALPHA_INTEL = 1.35

#: §5.4: single-socket Xeon E5-2637 v4 on SuperMicro X10-DRG-Q: "the idle
#: power consumption of the server, without a NIC, is 83W".
XEON_E5_2637_IDLE_NO_NIC_W = 83.0

#: §7: dual-socket Xeon E5-2660 v4 (ASUS ESC4000-G3S), 14 cores per CPU.
XEON_2660_SOCKETS = 2
XEON_2660_CORES_PER_SOCKET = 14
#: §7: "power consumption of the server is 56W in idle, evenly divided
#: between the sockets".
XEON_2660_IDLE_W = 56.0
#: §7: "jumps when even a single core is used, up to 91W".
XEON_2660_ONE_CORE_W = 91.0
#: §7: "134W under full load of all cores".
XEON_2660_FULL_LOAD_W = 134.0
#: §7: "even at a low CPU core load, e.g., 10%, the power consumption of the
#: server reaches 86W".
XEON_2660_ONE_CORE_10PCT_W = 86.0
#: §7: "the overhead of an additional core running is small, in the order of
#: 1W-2W" — we use 1.5W/core, which lands full load at
#: 56 + 35.7 + 1.5*27 + ... ≈ 134W (see repro.host.server for the fit).
XEON_2660_EXTRA_CORE_W = 1.5

# ===========================================================================
# NetFPGA SUME platform (§3, §4, §5).
# ===========================================================================

#: FPGA shell (interfaces, arbiters, PCIe/DMA, static power) inside a host.
#: §4.2: the idle server *with NIC* draws 39W; for LaKe's evaluation "the
#: NIC is taken out of the server … as LaKe replaces it", and the LaKe
#: system idles at 59W.  So the LaKe card is 59 − 36 = 23W, and with LaKe's
#: logic (2.2W) and memories (10.8W) the shell is 10W.
NETFPGA_SHELL_W = 10.0

#: §5.2: "The power overhead of LaKe's logic over the NetFPGA reference NIC
#: is 2.2W, including five processing cores, interconnects and a packet
#: classification module."
LAKE_LOGIC_TOTAL_W = 2.2
#: §5.1: "The power contribution of each PE is also small, about 0.25W".
LAKE_PE_W = 0.25
LAKE_DEFAULT_PES = 5
#: Remainder of the 2.2W once 5 PEs are accounted for: classifier + interconnect.
LAKE_CLASSIFIER_INTERCONNECT_W = LAKE_LOGIC_TOTAL_W - LAKE_DEFAULT_PES * LAKE_PE_W

#: §5.3: "4GB of DRAM memory costs 4.8W and 18MB of SRAM costs 6W".
DRAM_4GB_W = 4.8
SRAM_18MB_W = 6.0
MEMORIES_TOTAL_W = DRAM_4GB_W + SRAM_18MB_W  # "no less than 10W" (§5.1)

#: §5.1: "Reset to the external memory interfaces can save 40% of their power."
MEMORY_RESET_SAVING_FRACTION = 0.40

#: §5.1: "Clock gating to the LaKe module and the PEs earns less than 1W".
CLOCK_GATING_SAVING_W = 0.8

#: §4.3: P4xos standalone idle power and max dynamic adder.
P4XOS_STANDALONE_IDLE_W = 18.2
P4XOS_STANDALONE_DYNAMIC_MAX_W = 1.2

#: In-server card wattage (delta over the idle *no-NIC* host, 36W).  LaKe =
#: 23W so the LaKe system idles at 59W (§4.2); P4xos "base power consumption
#: is 10W lower than LaKe" (§4.3) → 13W card → 49W system; Emu DNS draws
#: "about 48W" in-server (§4.4) → 12W card.
LAKE_CARD_W = NETFPGA_SHELL_W + LAKE_LOGIC_TOTAL_W + MEMORIES_TOTAL_W  # 23.0
P4XOS_CARD_W = LAKE_CARD_W - 10.0  # 13.0
EMU_DNS_CARD_W = 12.0

#: Logic-only watts for the on-chip designs (card minus shell).
P4XOS_LOGIC_W = P4XOS_CARD_W - NETFPGA_SHELL_W
EMU_DNS_LOGIC_W = EMU_DNS_CARD_W - NETFPGA_SHELL_W

#: Standalone operation adds a dedicated PSU + board overheads.  Anchored by
#: §4.3's standalone P4xos figure: 18.2W standalone with a 13W in-server
#: card implies 5.2W of PSU/management overhead.  This puts standalone LaKe
#: at 28.2W idle, "roughly equivalent" (§5.1) to the idle no-NIC server (36W).
STANDALONE_PSU_OVERHEAD_W = P4XOS_STANDALONE_IDLE_W - P4XOS_CARD_W  # 5.2

#: Dynamic (load-dependent) power adder of the FPGA designs at full load.
#: §4.3: "additional dynamic power consumption (under maximum load) being no
#: more than 1.2W"; §4.4 Emu moves 47.5W -> <48W.
FPGA_DYNAMIC_MAX_W = 1.2
EMU_DYNAMIC_MAX_W = 0.5

#: §4.2/§3.1: LaKe line rate ≈ 13 Mpps on 10GE; each PE supports 3.3Mqps (§5.2).
LAKE_LINE_RATE_PPS = mpps(13.0)
LAKE_PE_CAPACITY_PPS = mpps(3.3)

#: §3.2: P4xos on NetFPGA SUME reaches 10M msgs/s.
P4XOS_FPGA_CAPACITY_PPS = mpps(10.0)

#: §4.4: Emu DNS peaks at "roughly 1M requests served every second";
#: software NSD serves 956K requests/s.
EMU_DNS_CAPACITY_PPS = mpps(1.0)
NSD_CAPACITY_PPS = 956_000.0

#: §4.4: "At peak throughput, the server draws twice the power of Emu DNS"
#: (Emu ≈ 48W) → NSD peak ≈ 96W.  Curve exponent picked so that the software
#: exceeds 48W below 200Kpps (§4.4: "less than 200Kpps are enough").
NSD_PEAK_W = 96.0
NSD_POWER_ALPHA = 1.05

# ===========================================================================
# Paxos software baselines (§3.2, §4.3).
# ===========================================================================

#: §3.2: "The libpaxos software implementation of an acceptor could achieve
#: a throughput of 178K messages/second" (single core).
LIBPAXOS_ACCEPTOR_CAPACITY_PPS = 178_000.0
#: The leader does strictly more work per client message; we use 160K/s.
LIBPAXOS_LEADER_CAPACITY_PPS = 160_000.0

#: Single-core-saturated wall power for libpaxos on the i7.  The §4.3
#: crossover at 150K msgs/s against P4xos-in-server (≈49W) pins the curve;
#: we model P = idle + LIN*u + POLY*u^4 (slow rise, steep near saturation).
LIBPAXOS_PEAK_W = 53.5
LIBPAXOS_LINEAR_W = 8.0
LIBPAXOS_POLY_W = LIBPAXOS_PEAK_W - I7_IDLE_W - LIBPAXOS_LINEAR_W  # 6.5
LIBPAXOS_POLY_EXP = 4.0

#: §4.3: DPDK "power consumption ... is high even under low load, and
#: remains almost constant" (constant polling).  Figure 3(b) shows ~72W.
DPDK_IDLE_W = 72.0
DPDK_PEAK_W = 78.0
DPDK_ACCEPTOR_CAPACITY_PPS = 900_000.0
DPDK_LEADER_CAPACITY_PPS = 800_000.0

# ===========================================================================
# Tofino ASIC (§6).
# ===========================================================================

#: §6 reports only normalized power.  We normalize to the idle power of the
#: switch running L2 forwarding alone (= 1.0).
TOFINO_IDLE_NORMALIZED = 1.0
#: §6: "the difference between the minimum and maximum consumption is less
#: than 20%" → full-load L2-only = 1.17, so that even with the P4xos
#: overhead the span stays below 20%.
TOFINO_L2_FULL_LOAD_NORMALIZED = 1.17
#: §6: "running P4xos adds no more than 2% to the overall power consumption".
TOFINO_P4XOS_OVERHEAD_FRACTION = 0.02
#: §6: "the diagnostic program supplied with Tofino (diag.p4) takes 4.8% more
#: power than the layer 2 forwarding program under full load".
TOFINO_DIAG_OVERHEAD_FRACTION = 0.048
#: §3.2: ASIC deployment processes "over 2.5 billion consensus messages/s".
TOFINO_P4XOS_CAPACITY_PPS = 2.5e9
#: §6 test configuration: 1.28Tbps as 32x40G snake.
TOFINO_PORTS = 32
TOFINO_PORT_GBPS = 40
#: Absolute scale used when de-normalizing is required (typical Tofino-class
#: system power; only ratios are reported in experiments, per §6).
TOFINO_TYPICAL_IDLE_W = 200.0

#: §6: ops/W orders of magnitude ("software ... 10K's of messages per watt,
#: FPGA ... 100K's, ASIC ... 10M's").
OPS_PER_WATT_ORDER = {"software": 1e4, "fpga": 1e5, "asic": 1e7}

#: §6: at 10% utilization the Tofino P4xos delivers x1000 the throughput of
#: a server while its dynamic power is 1/3 of the server's at 180Kpps.
TOFINO_DYNAMIC_VS_SERVER_FRACTION = 1.0 / 3.0
TOFINO_X1000_UTILIZATION = 0.10

# ===========================================================================
# Latency calibration (§5.3, §9.5, §3.3).
# ===========================================================================

#: §5.3: "A hit in the on-chip cache takes no more than 1.4us".
LAKE_L1_HIT_US = 1.4
#: §5.3: off-chip (DRAM) hit: 1.67us median, 1.9us p99 at 100Kqps, p99 3us
#: at 10Mqps.
LAKE_L2_HIT_MEDIAN_US = 1.67
LAKE_L2_HIT_P99_LOW_LOAD_US = 1.9
LAKE_L2_HIT_P99_FULL_LOAD_US = 3.0
#: §5.3: "a miss in the hardware will be x10 longer (13.5us median, 14.3us
#: 99th percentile)" — i.e. served by host software behind the card.
LAKE_MISS_MEDIAN_US = 13.5
LAKE_MISS_P99_US = 14.3
#: §3.1: LaKe provides "x10 latency ... improvement compared to
#: software-based memcached" → software memcached ≈ 14-16us median.
MEMCACHED_SW_MEDIAN_US = 15.0
MEMCACHED_SW_P99_US = 32.0

#: §3.3: Emu DNS provides "approximately x70 average and 99th percentile
#: latency improvement" over NSD.
NSD_MEDIAN_US = 70.0
EMU_DNS_MEDIAN_US = 1.0

#: Figure 7: software leader end-to-end consensus latency ~400us at load,
#: "latency is halved when the leader is implemented in hardware".
PAXOS_SW_LEADER_LATENCY_US = 400.0
PAXOS_HW_LEADER_LATENCY_US = 200.0

#: Per-role software stack (kernel UDP + libpaxos processing) latencies,
#: chosen so the end-to-end chain client->leader->acceptor->learner->client
#: lands at ~400us with a software leader and ~200us (halved, Figure 7)
#: with the leader in hardware.
LIBPAXOS_LEADER_STACK_US = 200.0
LIBPAXOS_ACCEPTOR_STACK_US = 90.0
LIBPAXOS_LEARNER_STACK_US = 90.0
#: DPDK kernel-bypass trims the stack latency substantially (§3.2).
DPDK_STACK_US = 25.0
#: P4xos pipeline latency on the FPGA (§9.5: ns-scale stages; µs-scale total).
P4XOS_FPGA_PIPELINE_US = 2.0

#: Software memcached / NSD stack latencies (median request latency minus
#: the ~1µs service occupancy), matching MEMCACHED_SW_MEDIAN_US and
#: NSD_MEDIAN_US.
MEMCACHED_STACK_US = 14.0
NSD_STACK_US = 69.0

#: §9.5: fully pipelined designs have almost-constant latency, ±100ns on
#: NetFPGA SUME.
FPGA_PIPELINE_JITTER_US = 0.1

# ===========================================================================
# LaKe memory capacities (§5.3).
# ===========================================================================

#: §5.3: 4GB DRAM holds 33M 64B value chunks and 268M hash-table entries;
#: the SRAM holds a free-chunk list of up to 4.7M entries; on-chip-only
#: designs hold x65k fewer value entries and x32k fewer free-list entries.
DRAM_VALUE_ENTRIES = 33_000_000
DRAM_HASH_ENTRIES = 268_000_000
SRAM_FREELIST_ENTRIES = 4_700_000
ONCHIP_VALUE_ENTRIES = DRAM_VALUE_ENTRIES // 65_000   # ≈ 507
ONCHIP_FREELIST_ENTRIES = SRAM_FREELIST_ENTRIES // 32_000  # ≈ 146

# ===========================================================================
# On-demand controller defaults (§9.1, §9.2).
# ===========================================================================

#: Network-controlled: rate thresholds with hysteresis.  The shift-up
#: thresholds sit at the §4 crossovers; shift-down lower, to avoid flapping.
NETCTL_KVS_UP_PPS = 80_000.0      # §4.2 crossover
NETCTL_KVS_DOWN_PPS = 50_000.0
NETCTL_PAXOS_UP_PPS = 150_000.0   # §4.3 crossover
NETCTL_PAXOS_DOWN_PPS = 100_000.0
NETCTL_DNS_UP_PPS = 150_000.0     # §4.4 crossover region
NETCTL_DNS_DOWN_PPS = 100_000.0
#: Figure 6: "Transition is triggered after three seconds of sustained high
#: load".
CONTROLLER_SUSTAIN_S = 3.0

#: Host-controlled defaults: RAPL package-power thresholds + host CPU-usage
#: thresholds.  Calibrated to the Figure 6 scenario: the co-located
#: ChainerMN job lifts RAPL package power from ~36W to ~85W and host CPU
#: utilization above 50%, which triggers the shift; after it stops, power
#: falls below the down threshold and the workload shifts back.
HOSTCTL_POWER_UP_W = 60.0
HOSTCTL_POWER_DOWN_W = 45.0
HOSTCTL_CPU_UP_FRACTION = 0.50
HOSTCTL_CPU_DOWN_FRACTION = 0.30

#: §9.1 implementation footprint (reported for fidelity; used in docs/tests).
NETCTL_LINES_OF_CODE = 40
HOSTCTL_LINES_OF_CODE = 204
HOSTCTL_CPU_OVERHEAD_FRACTION = 0.003  # "0.3% CPU usage, mainly RAPL reads"

#: Figure 7: client retry timeout ≈ 100ms ("throughput drops to zero for
#: about 100 msec. This corresponds to the value of the client timeout").
PAXOS_CLIENT_TIMEOUT_MS = 100.0
PAXOS_LEARNER_GAP_TIMEOUT_MS = 50.0

# ===========================================================================
# §9.3 real-workload statistics (Dynamo / Google cluster trace).
# ===========================================================================

#: Dynamo rack-level power variation percentiles.
DYNAMO_RACK_VARIATION_3S_P99 = 0.128
DYNAMO_RACK_VARIATION_30S_P99 = 0.266
DYNAMO_RACK_VARIATION_MEDIAN = 0.05
DYNAMO_CACHING_VARIATION_60S_MEDIAN = 0.092
DYNAMO_CACHING_VARIATION_60S_P99 = 0.262
DYNAMO_WEB_VARIATION_MEDIAN = 0.372
DYNAMO_WEB_VARIATION_P99 = 0.622
#: Dynamo dynamic power at 10% load per CPU generation (§9.3).
DYNAMO_WESTMERE_10PCT_DYNAMIC_W = 30.0
DYNAMO_HASWELL_10PCT_DYNAMIC_W = 75.0

#: Google trace statistics (§9.3): 90% of utilization from jobs >2h that are
#: only 5% of jobs; >=1.39M unique tasks with >=10% of a core for >=5min;
#: average 7.7 normalized cores of such tasks per node per 5-min sample.
GOOGLE_LONG_JOB_UTIL_FRACTION = 0.90
GOOGLE_LONG_JOB_COUNT_FRACTION = 0.05
GOOGLE_OFFLOAD_CANDIDATE_TASKS = 1_390_000
GOOGLE_AVG_CANDIDATE_CORES_PER_NODE = 7.7
GOOGLE_CANDIDATE_MIN_CORE_FRACTION = 0.10
GOOGLE_CANDIDATE_MIN_DURATION_S = 300.0

# ===========================================================================
# §9.4 / §10 switch + SmartNIC figures.
# ===========================================================================

#: §9.4: switches take "less than 5W per 100G port", so "a million queries
#: will draw less than 1W" (packets ≤1500B).
SWITCH_W_PER_100G_PORT = 5.0
SWITCH_W_PER_MQPS = 1.0

#: §10: Azure AccelNet SmartNIC consumes 17-19W standalone on a 40GE board,
#: "close to 4Mpps/W for some use cases".
ACCELNET_STANDALONE_W = (17.0, 19.0)
ACCELNET_MPPS_PER_W = 4.0
#: §10: SmartNICs typically cap at the 25W PCIe slot budget.
SMARTNIC_PCIE_POWER_CAP_W = 25.0

#: §5.4: "Xilinx UltraScale+ achieves x2.4 performance/Watt compared with
#: Xilinx Virtex 7".
ULTRASCALE_PERF_PER_WATT_GAIN = 2.4

#: Standby (inactive-but-programmed) power of a SmartNIC as a fraction of
#: its idle draw, per §10 architecture.  FPGA-based NICs support the §5.1
#: knobs (clock gating, memory interfaces in reset) — the NetFPGA SUME
#: equivalent lands at ~0.78 of the active idle card (23W -> ~17.9W), and
#: we use the same order for an AccelNet-class board.  ASIC NICs are sealed
#: fixed-function silicon with little to gate (0.90); SoC NICs can idle
#: their cores but not the fabric (0.85).
SMARTNIC_FPGA_STANDBY_FRACTION = 0.78
SMARTNIC_ASIC_STANDBY_FRACTION = 0.90
SMARTNIC_SOC_STANDBY_FRACTION = 0.85

#: Order-of-magnitude activation (warm-up) costs per device class, used as
#: profile metadata by :mod:`repro.hw.device`.  The NetFPGA designs carry 0
#: here because their real warm-up — LaKe's cold caches (§9.2) — is
#: emergent in the DES rather than a fixed delay; the SmartNIC figures are
#: representative firmware/table-install latencies per §10's maturity
#: ordering (FPGA partial reconfiguration ≫ SoC core spin-up ≫ ASIC rule
#: install).
DEVICE_WARMUP_FPGA_SMARTNIC_US = 50_000.0
DEVICE_WARMUP_ASIC_SMARTNIC_US = 5_000.0
DEVICE_WARMUP_SOC_SMARTNIC_US = 20_000.0


# ===========================================================================
# Structured views used by model constructors.
# ===========================================================================


@dataclass(frozen=True)
class ServerCalibration:
    """Anchor points for a software server power curve."""

    name: str
    idle_w: float
    peak_w: float
    cores: int
    base_ghz: float


I7_6700K = ServerCalibration(
    name="i7-6700K", idle_w=I7_IDLE_W, peak_w=I7_MEMCACHED_PEAK_W, cores=4, base_ghz=4.0
)

XEON_E5_2637 = ServerCalibration(
    name="Xeon E5-2637 v4",
    idle_w=XEON_E5_2637_IDLE_NO_NIC_W,
    peak_w=XEON_E5_2637_IDLE_NO_NIC_W + 80.0,
    cores=4,
    base_ghz=3.5,
)

XEON_E5_2660 = ServerCalibration(
    name="Xeon E5-2660 v4 (dual)",
    idle_w=XEON_2660_IDLE_W,
    peak_w=XEON_2660_FULL_LOAD_W,
    cores=XEON_2660_SOCKETS * XEON_2660_CORES_PER_SOCKET,
    base_ghz=2.0,
)
